//! Dense row-major `f32` matrices.
//!
//! `Mat` is the single dense container used by the autodiff tape, the
//! optimizers, and every model in the workspace. It is deliberately simple —
//! a shape plus a `Vec<f32>` — with the handful of BLAS-like kernels the
//! GNN training loop needs (`matmul`, `matmul_nt`, `matmul_tn`).
//!
//! The matmul family runs on the `graphaug-par` runtime: output rows are
//! split into fixed chunks (a function of the shape only, never the thread
//! count) and each chunk is computed by one worker into its disjoint output
//! slice, with the k-reduction order fixed inside the kernel — so results
//! are bit-identical under any `GRAPHAUG_THREADS`. Inner loops process four
//! k-steps per pass over the output row, quartering the store traffic of a
//! naive ikj loop.

/// A dense `rows × cols` matrix stored in row-major order.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// All-`v` matrix.
    pub fn filled(rows: usize, cols: usize, v: f32) -> Self {
        Mat {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Wraps an existing row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Mat { rows, cols, data }
    }

    /// Builds a matrix element-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Mat { rows, cols, data }
    }

    /// A 1×1 matrix holding a scalar.
    pub fn scalar(v: f32) -> Self {
        Mat::from_vec(1, 1, vec![v])
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Single scalar value of a 1×1 matrix.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 matrix");
        self.data[0]
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise combination of two equal-shaped matrices.
    pub fn zip_map(&self, other: &Mat, f: impl Fn(f32, f32) -> f32) -> Mat {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += alpha * other` in place.
    pub fn add_assign_scaled(&mut self, other: &Mat, alpha: f32) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_assign_scaled shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Dense matmul `self × other`, parallel over fixed chunks of output
    /// rows. Within a row, four k-steps are folded into each pass over the
    /// output row; the per-element summation order depends only on k.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = vec![0f32; n * m];
        if m > 0 {
            graphaug_par::parallel_rows(&mut out, m, |row0, rows| {
                for (i, orow) in rows.chunks_exact_mut(m).enumerate() {
                    let arow = self.row(row0 + i);
                    match m {
                        8 => matmul_row_regs::<8>(arow, &other.data, k, orow),
                        16 => matmul_row_regs::<16>(arow, &other.data, k, orow),
                        32 => matmul_row_regs::<32>(arow, &other.data, k, orow),
                        64 => matmul_row_regs::<64>(arow, &other.data, k, orow),
                        _ => matmul_row_axpy4(arow, &other.data, k, m, orow),
                    }
                }
            });
        }
        Mat {
            rows: n,
            cols: m,
            data: out,
        }
    }

    /// `self × otherᵀ` — rows of both operands are contiguous, so this is a
    /// row-dot-row kernel, parallel over fixed chunks of output rows.
    pub fn matmul_nt(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "matmul_nt inner dimension mismatch");
        let (n, m) = (self.rows, other.rows);
        let mut out = vec![0f32; n * m];
        if m > 0 {
            graphaug_par::parallel_rows(&mut out, m, |row0, rows| {
                for (i, orow) in rows.chunks_exact_mut(m).enumerate() {
                    let arow = self.row(row0 + i);
                    for (j, o) in orow.iter_mut().enumerate() {
                        *o = dot4(arow, other.row(j));
                    }
                }
            });
        }
        Mat {
            rows: n,
            cols: m,
            data: out,
        }
    }

    /// `selfᵀ × other` without materializing the transpose, parallel over
    /// fixed chunks of output rows (columns of `self`). The k-reduction for
    /// every output element runs in ascending-k order inside one chunk, so
    /// no cross-thread merging is needed.
    pub fn matmul_tn(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "matmul_tn inner dimension mismatch");
        let (k, n, m) = (self.rows, self.cols, other.cols);
        let mut out = vec![0f32; n * m];
        if m > 0 {
            graphaug_par::parallel_rows(&mut out, m, |row0, rows| {
                // kk-outer outer-product accumulation over this chunk's
                // column span of self: both operand reads are contiguous and
                // the chunk's output block stays cache-resident. Per output
                // element the reduction is ascending-k regardless of how the
                // spans were chunked.
                let span = rows.len() / m;
                let mut kk = 0usize;
                while kk + 4 <= k {
                    let a0 = &self.data[kk * n + row0..kk * n + row0 + span];
                    let a1 = &self.data[(kk + 1) * n + row0..(kk + 1) * n + row0 + span];
                    let a2 = &self.data[(kk + 2) * n + row0..(kk + 2) * n + row0 + span];
                    let a3 = &self.data[(kk + 3) * n + row0..(kk + 3) * n + row0 + span];
                    let b0 = &other.data[kk * m..kk * m + m];
                    let b1 = &other.data[(kk + 1) * m..(kk + 1) * m + m];
                    let b2 = &other.data[(kk + 2) * m..(kk + 2) * m + m];
                    let b3 = &other.data[(kk + 3) * m..(kk + 3) * m + m];
                    for (ii, orow) in rows.chunks_exact_mut(m).enumerate() {
                        let (x0, x1, x2, x3) = (a0[ii], a1[ii], a2[ii], a3[ii]);
                        for j in 0..m {
                            orow[j] += x0 * b0[j] + x1 * b1[j] + x2 * b2[j] + x3 * b3[j];
                        }
                    }
                    kk += 4;
                }
                while kk < k {
                    let a = &self.data[kk * n + row0..kk * n + row0 + span];
                    let brow = &other.data[kk * m..kk * m + m];
                    for (ii, orow) in rows.chunks_exact_mut(m).enumerate() {
                        let x = a[ii];
                        for (o, &b) in orow.iter_mut().zip(brow) {
                            *o += x * b;
                        }
                    }
                    kk += 1;
                }
            });
        }
        Mat {
            rows: n,
            cols: m,
            data: out,
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Squared Frobenius norm.
    pub fn frob_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Maximum absolute element (0 for empty matrices).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0f32, |m, v| m.max(v.abs()))
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

/// One output row of `A × B` for a width known at compile time: the output
/// row lives in a `[f32; M]` register file across the whole k-loop, so B
/// streams through once with no intermediate stores. Ascending-k summation
/// order, same as the generic path.
#[inline]
fn matmul_row_regs<const M: usize>(arow: &[f32], b: &[f32], k: usize, orow: &mut [f32]) {
    let mut acc = [0f32; M];
    for (kk, &a) in arow.iter().enumerate().take(k) {
        let brow = &b[kk * M..kk * M + M];
        for j in 0..M {
            acc[j] += a * brow[j];
        }
    }
    orow.copy_from_slice(&acc);
}

/// One output row of `A × B`: `orow = arow × B`, folding four k-steps into
/// each pass over `orow`. The summation order for every output element is
/// ascending k regardless of how rows were chunked across threads.
#[inline]
fn matmul_row_axpy4(arow: &[f32], b: &[f32], k: usize, m: usize, orow: &mut [f32]) {
    let mut kk = 0usize;
    while kk + 4 <= k {
        let (a0, a1, a2, a3) = (arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3]);
        let b0 = &b[kk * m..kk * m + m];
        let b1 = &b[(kk + 1) * m..(kk + 1) * m + m];
        let b2 = &b[(kk + 2) * m..(kk + 2) * m + m];
        let b3 = &b[(kk + 3) * m..(kk + 3) * m + m];
        for j in 0..m {
            orow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
        }
        kk += 4;
    }
    while kk < k {
        let a = arow[kk];
        let brow = &b[kk * m..kk * m + m];
        for (o, &x) in orow.iter_mut().zip(brow) {
            *o += a * x;
        }
        kk += 1;
    }
}

/// Dot product with four independent accumulators combined in a fixed order.
#[inline]
fn dot4(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0f32; 4];
    let mut i = 0usize;
    while i + 4 <= n {
        acc[0] += a[i] * b[i];
        acc[1] += a[i + 1] * b[i + 1];
        acc[2] += a[i + 2] * b[i + 2];
        acc[3] += a[i + 3] * b[i + 3];
        i += 4;
    }
    let mut tail = 0f32;
    while i < n {
        tail += a[i] * b[i];
        i += 1;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let m = Mat::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(Mat::scalar(7.0).item(), 7.0);
    }

    #[test]
    fn matmul_small_known_result() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Mat::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_nt_equals_matmul_of_transpose() {
        let a = Mat::from_fn(3, 4, |r, c| (r + c) as f32 * 0.3 - 1.0);
        let b = Mat::from_fn(2, 4, |r, c| (r * c) as f32 * 0.1 + 0.5);
        let got = a.matmul_nt(&b);
        let want = a.matmul(&b.transpose());
        for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_tn_equals_transpose_matmul() {
        let a = Mat::from_fn(4, 3, |r, c| (r as f32 - c as f32) * 0.25);
        let b = Mat::from_fn(4, 2, |r, c| (r + 2 * c) as f32 * 0.5);
        let got = a.matmul_tn(&b);
        let want = a.transpose().matmul(&b);
        for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_round_trips() {
        let m = Mat::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn add_assign_scaled_accumulates() {
        let mut a = Mat::filled(2, 2, 1.0);
        let b = Mat::filled(2, 2, 2.0);
        a.add_assign_scaled(&b, 0.5);
        assert_eq!(a.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn frob_sq_and_max_abs() {
        let m = Mat::from_vec(1, 3, vec![3.0, -4.0, 0.0]);
        assert_eq!(m.frob_sq(), 25.0);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        Mat::zeros(2, 3).matmul(&Mat::zeros(2, 3));
    }
}
