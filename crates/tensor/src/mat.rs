//! Dense row-major `f32` matrices.
//!
//! `Mat` is the single dense container used by the autodiff tape, the
//! optimizers, and every model in the workspace. It is deliberately simple —
//! a shape plus a `Vec<f32>` — with the handful of BLAS-like kernels the
//! GNN training loop needs (`matmul`, `matmul_nt`, `matmul_tn`) written as
//! allocation-free ikj loops over row slices.

/// A dense `rows × cols` matrix stored in row-major order.
#[derive(Clone, Debug, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// All-`v` matrix.
    pub fn filled(rows: usize, cols: usize, v: f32) -> Self {
        Mat {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Wraps an existing row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Mat { rows, cols, data }
    }

    /// Builds a matrix element-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Mat { rows, cols, data }
    }

    /// A 1×1 matrix holding a scalar.
    pub fn scalar(v: f32) -> Self {
        Mat::from_vec(1, 1, vec![v])
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Single scalar value of a 1×1 matrix.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 matrix");
        self.data[0]
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Element-wise combination of two equal-shaped matrices.
    pub fn zip_map(&self, other: &Mat, f: impl Fn(f32, f32) -> f32) -> Mat {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += alpha * other` in place.
    pub fn add_assign_scaled(&mut self, other: &Mat, alpha: f32) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_assign_scaled shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Dense matmul `self × other` with ikj loop ordering (cache-friendly,
    /// branch-free inner loop over contiguous rows).
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        let (n, m) = (self.rows, other.cols);
        let mut out = vec![0f32; n * m];
        for i in 0..n {
            let arow = self.row(i);
            let orow = &mut out[i * m..(i + 1) * m];
            for (kk, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[kk * m..(kk + 1) * m];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        Mat {
            rows: n,
            cols: m,
            data: out,
        }
    }

    /// `self × otherᵀ` — rows of both operands are contiguous, so this is a
    /// row-dot-row kernel.
    pub fn matmul_nt(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "matmul_nt inner dimension mismatch");
        let (n, m) = (self.rows, other.rows);
        let mut out = vec![0f32; n * m];
        for i in 0..n {
            let arow = self.row(i);
            for j in 0..m {
                let brow = other.row(j);
                let mut acc = 0f32;
                for (&a, &b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out[i * m + j] = acc;
            }
        }
        Mat {
            rows: n,
            cols: m,
            data: out,
        }
    }

    /// `selfᵀ × other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "matmul_tn inner dimension mismatch");
        let (k, n, m) = (self.rows, self.cols, other.cols);
        let mut out = vec![0f32; n * m];
        for kk in 0..k {
            let arow = self.row(kk);
            let brow = other.row(kk);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut out[i * m..(i + 1) * m];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        Mat {
            rows: n,
            cols: m,
            data: out,
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Squared Frobenius norm.
    pub fn frob_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Maximum absolute element (0 for empty matrices).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0f32, |m, v| m.max(v.abs()))
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let m = Mat::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(Mat::scalar(7.0).item(), 7.0);
    }

    #[test]
    fn matmul_small_known_result() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Mat::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_nt_equals_matmul_of_transpose() {
        let a = Mat::from_fn(3, 4, |r, c| (r + c) as f32 * 0.3 - 1.0);
        let b = Mat::from_fn(2, 4, |r, c| (r * c) as f32 * 0.1 + 0.5);
        let got = a.matmul_nt(&b);
        let want = a.matmul(&b.transpose());
        for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_tn_equals_transpose_matmul() {
        let a = Mat::from_fn(4, 3, |r, c| (r as f32 - c as f32) * 0.25);
        let b = Mat::from_fn(4, 2, |r, c| (r + 2 * c) as f32 * 0.5);
        let got = a.matmul_tn(&b);
        let want = a.transpose().matmul(&b);
        for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_round_trips() {
        let m = Mat::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn add_assign_scaled_accumulates() {
        let mut a = Mat::filled(2, 2, 1.0);
        let b = Mat::filled(2, 2, 2.0);
        a.add_assign_scaled(&b, 0.5);
        assert_eq!(a.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn frob_sq_and_max_abs() {
        let m = Mat::from_vec(1, 3, vec![3.0, -4.0, 0.0]);
        assert_eq!(m.frob_sq(), 25.0);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        Mat::zeros(2, 3).matmul(&Mat::zeros(2, 3));
    }
}
