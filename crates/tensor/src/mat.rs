//! Dense row-major `f32` matrices.
//!
//! `Mat` is the single dense container used by the autodiff tape, the
//! optimizers, and every model in the workspace. It is deliberately simple —
//! a shape plus a `Vec<f32>` — with the handful of BLAS-like kernels the
//! GNN training loop needs (`matmul`, `matmul_nt`, `matmul_tn`).
//!
//! The matmul family runs on the `graphaug-par` runtime: output rows are
//! split into fixed chunks (a function of the shape only, never the thread
//! count) and each chunk is computed by one worker into its disjoint output
//! slice, with the k-reduction order fixed inside the kernel — so results
//! are bit-identical under any `GRAPHAUG_THREADS`. Each span kernel is
//! compiled twice from one fixed-order body — an AVX2 lane build and a
//! scalar fallback — and dispatched at runtime (`graphaug_par::simd`);
//! because the lane ops are explicit [`F32x8`] arithmetic with fixed
//! reduction trees and no FMA, the two builds are bit-identical too.
//! `matmul` (widths > 1) and `matmul_tn` keep the pre-lane ascending-k
//! per-element order; `matmul_nt` and the width-1 `matmul` column reduce
//! through [`graphaug_par::dot8`]'s fixed lane tree.

use graphaug_par::{dot8, simd_dispatch, F32x8};

/// A dense `rows × cols` matrix stored in row-major order.
///
/// Backing buffers of tape-sized matrices are recycled through a bounded
/// thread-local pool ([`crate::pool`]): dropping a `Mat` offers its buffer
/// back, and every constructor takes (and fully initializes) a pooled buffer
/// before allocating fresh memory.
#[derive(Debug, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Clone for Mat {
    fn clone(&self) -> Self {
        let mut data = crate::pool::take(self.data.len());
        data.extend_from_slice(&self.data);
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Drop for Mat {
    fn drop(&mut self) {
        crate::pool::put(std::mem::take(&mut self.data));
    }
}

impl Mat {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let n = rows * cols;
        let mut data = crate::pool::take(n);
        data.resize(n, 0.0);
        Mat { rows, cols, data }
    }

    /// All-`v` matrix.
    pub fn filled(rows: usize, cols: usize, v: f32) -> Self {
        let n = rows * cols;
        let mut data = crate::pool::take(n);
        data.resize(n, v);
        Mat { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Mat { rows, cols, data }
    }

    /// Builds a matrix element-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = crate::pool::take(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Mat { rows, cols, data }
    }

    /// A 1×1 matrix holding a scalar.
    pub fn scalar(v: f32) -> Self {
        Mat::from_vec(1, 1, vec![v])
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing buffer.
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Single scalar value of a 1×1 matrix.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 matrix");
        self.data[0]
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Mat {
        let mut data = crate::pool::take(self.data.len());
        data.extend(self.data.iter().map(|&v| f(v)));
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise combination of two equal-shaped matrices.
    pub fn zip_map(&self, other: &Mat, f: impl Fn(f32, f32) -> f32) -> Mat {
        assert_eq!(self.shape(), other.shape(), "zip_map shape mismatch");
        let mut data = crate::pool::take(self.data.len());
        data.extend(self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)));
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// `self += alpha * other` in place.
    pub fn add_assign_scaled(&mut self, other: &Mat, alpha: f32) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_assign_scaled shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Dense matmul `self × other`, parallel over fixed chunks of output
    /// rows. Within a row, four k-steps are folded into each pass over the
    /// output row; the per-element summation order depends only on k.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Mat::zeros(n, m);
        if m > 0 {
            graphaug_par::parallel_rows(out.as_mut_slice(), m, |row0, rows| {
                matmul_span(&self.data, &other.data, k, m, row0, rows);
            });
        }
        out
    }

    /// `self × otherᵀ` — rows of both operands are contiguous, so this is a
    /// row-dot-row kernel, parallel over fixed chunks of output rows.
    pub fn matmul_nt(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "matmul_nt inner dimension mismatch");
        let (n, k, m) = (self.rows, self.cols, other.rows);
        let mut out = Mat::zeros(n, m);
        if m > 0 {
            graphaug_par::parallel_rows(out.as_mut_slice(), m, |row0, rows| {
                matmul_nt_span(&self.data, &other.data, k, m, row0, rows);
            });
        }
        out
    }

    /// `selfᵀ × other` without materializing the transpose, parallel over
    /// fixed chunks of output rows (columns of `self`). The k-reduction for
    /// every output element runs in ascending-k order inside one chunk, so
    /// no cross-thread merging is needed.
    pub fn matmul_tn(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "matmul_tn inner dimension mismatch");
        let (k, n, m) = (self.rows, self.cols, other.cols);
        let mut out = Mat::zeros(n, m);
        if m > 0 {
            graphaug_par::parallel_rows(out.as_mut_slice(), m, |row0, rows| {
                matmul_tn_span(&self.data, &other.data, k, n, m, row0, rows);
            });
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Squared Frobenius norm.
    pub fn frob_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Maximum absolute element (0 for empty matrices).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0f32, |m, v| m.max(v.abs()))
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

simd_dispatch! {
    /// Span kernel of `A × B`: rows `row0..` of the output, each computed by
    /// a width-specialized lane kernel (8/16/32/64 columns — the embedding
    /// widths the workspace uses) or the 4-step axpy fallback. Per output
    /// element the summation order is ascending k in every variant except
    /// `m == 1` (which reduces through `dot8`'s fixed lane tree); each
    /// width's order is still fixed, so results are bit-identical across
    /// thread counts and the lane/scalar builds.
    fn matmul_span(a: &[f32], b: &[f32], k: usize, m: usize, row0: usize, rows: &mut [f32]) {
        for (i, orow) in rows.chunks_exact_mut(m).enumerate() {
            let arow = &a[(row0 + i) * k..(row0 + i) * k + k];
            match m {
                // m == 1: `b` is one contiguous column, so the row is a
                // plain dot product. Reduced through `dot8`'s lane tree —
                // the one matmul width whose summation order is *not*
                // ascending-k (a serial chain would cost k add-latencies
                // per row; the MLP output layer hits this shape hard).
                1 => orow[0] = dot8(arow, b),
                8 => matmul_row_lanes::<1, 4>(arow, b, k, orow),
                16 => matmul_row_lanes::<2, 4>(arow, b, k, orow),
                32 => matmul_row_lanes::<4, 2>(arow, b, k, orow),
                64 => matmul_row_lanes::<8, 1>(arow, b, k, orow),
                _ => matmul_row_axpy4(arow, b, k, m, orow),
            }
        }
    }
}

simd_dispatch! {
    /// Span kernel of `A × Bᵀ`: every output element is a row-dot-row
    /// reduced through [`dot8`]'s fixed lane tree.
    fn matmul_nt_span(a: &[f32], b: &[f32], k: usize, m: usize, row0: usize, rows: &mut [f32]) {
        for (i, orow) in rows.chunks_exact_mut(m).enumerate() {
            let arow = &a[(row0 + i) * k..(row0 + i) * k + k];
            for (j, o) in orow.iter_mut().enumerate() {
                *o = dot8(arow, &b[j * k..j * k + k]);
            }
        }
    }
}

simd_dispatch! {
    /// Span kernel of `Aᵀ × B`. `matmul_tn`'s workloads are tall-`k` with
    /// tiny outputs (weight gradients), so the kernel blocks the reduction
    /// dimension: for each kk-block, row groups of the output accumulate in
    /// registers across the whole block (see [`matmul_tn_rows_lanes`]) and
    /// flush to memory once, keeping both operand streams cache-resident and
    /// the output traffic negligible. Per output element the reduction is
    /// pure ascending-k for every width path, thread count, and the
    /// lane/scalar builds.
    fn matmul_tn_span(a: &[f32], b: &[f32], k: usize, n: usize, m: usize, row0: usize, rows: &mut [f32]) {
        let span = rows.len() / m;
        // 256 k-steps × span columns of `A` stay L1/L2-resident across the
        // row-group passes of one block.
        let mut kkb = 0usize;
        while kkb < k {
            let kb = (k - kkb).min(256);
            let mut i0 = 0usize;
            match m {
                8 => {
                    while i0 + 8 <= span {
                        matmul_tn_rows_lanes::<1, 8>(a, b, n, row0 + i0, kkb, kb, rows, i0);
                        i0 += 8;
                    }
                }
                16 => {
                    while i0 + 4 <= span {
                        matmul_tn_rows_lanes::<2, 4>(a, b, n, row0 + i0, kkb, kb, rows, i0);
                        i0 += 4;
                    }
                }
                32 => {
                    while i0 + 2 <= span {
                        matmul_tn_rows_lanes::<4, 2>(a, b, n, row0 + i0, kkb, kb, rows, i0);
                        i0 += 2;
                    }
                }
                64 => {
                    while i0 < span {
                        matmul_tn_rows_lanes::<8, 1>(a, b, n, row0 + i0, kkb, kb, rows, i0);
                        i0 += 1;
                    }
                }
                _ => {}
            }
            // Leftover rows of a lane width, and every row of a generic
            // width: one row at a time, scalar, same ascending-k order.
            for ii in i0..span {
                let orow = &mut rows[ii * m..ii * m + m];
                for kk in kkb..kkb + kb {
                    let x = a[kk * n + row0 + ii];
                    let brow = &b[kk * m..kk * m + m];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += x * bv;
                    }
                }
            }
            kkb += kb;
        }
    }
}

/// One kk-block of `Aᵀ × B` for `RB` output rows of `NL` 8-wide lanes:
/// the `RB × NL` accumulator file lives in registers for the whole block
/// (`RB·NL ≤ 8` by construction), each k-step broadcasting `RB` elements of
/// the `A` column span against one contiguous `B` row, and the file is
/// added into the output once at block end. Accumulation per element is a
/// single chain in ascending k, so the overall order is plain sequential-k.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn matmul_tn_rows_lanes<const NL: usize, const RB: usize>(
    a: &[f32],
    b: &[f32],
    n: usize,
    col0: usize,
    kk0: usize,
    kb: usize,
    rows: &mut [f32],
    i0: usize,
) {
    let m = NL * 8;
    let mut accs = [[F32x8::zero(); NL]; RB];
    for kk in kk0..kk0 + kb {
        let arow = &a[kk * n + col0..kk * n + col0 + RB];
        let brow = &b[kk * m..kk * m + m];
        for (r, acc) in accs.iter_mut().enumerate() {
            let x = F32x8::splat(arow[r]);
            for (l, lane) in acc.iter_mut().enumerate() {
                *lane = lane.mul_acc(x, F32x8::load(&brow[l * 8..]));
            }
        }
    }
    for (r, acc) in accs.iter().enumerate() {
        let orow = &mut rows[(i0 + r) * m..(i0 + r) * m + m];
        for (l, lane) in acc.iter().enumerate() {
            F32x8::load(&orow[l * 8..])
                .add(*lane)
                .store(&mut orow[l * 8..]);
        }
    }
}

/// One output row of `A × B` for a width of `NL` 8-wide lanes known at
/// compile time: the output row lives in `U` `[F32x8; NL]` accumulator
/// files across the whole k-loop (so B streams through once with no
/// intermediate stores), with file `u` taking the k-steps `≡ u (mod U)`,
/// remainder steps folded into file 0, and the files merged in ascending
/// file order. `U` is picked per width so `NL·U ≤ 8` accumulator registers
/// break the addition latency chain without spilling. The reduction order
/// is a fixed function of `(k, U)` — identical across thread counts and
/// between the lane and scalar builds.
#[inline(always)]
fn matmul_row_lanes<const NL: usize, const U: usize>(
    arow: &[f32],
    b: &[f32],
    k: usize,
    orow: &mut [f32],
) {
    let m = NL * 8;
    let mut files = [[F32x8::zero(); NL]; U];
    let mut kk = 0usize;
    while kk + U <= k {
        for (u, file) in files.iter_mut().enumerate() {
            let av = F32x8::splat(arow[kk + u]);
            let brow = &b[(kk + u) * m..(kk + u) * m + m];
            for (l, lane) in file.iter_mut().enumerate() {
                *lane = lane.mul_acc(av, F32x8::load(&brow[l * 8..]));
            }
        }
        kk += U;
    }
    while kk < k {
        let av = F32x8::splat(arow[kk]);
        let brow = &b[kk * m..kk * m + m];
        for (l, lane) in files[0].iter_mut().enumerate() {
            *lane = lane.mul_acc(av, F32x8::load(&brow[l * 8..]));
        }
        kk += 1;
    }
    for l in 0..NL {
        let mut acc = files[0][l];
        for file in files.iter().skip(1) {
            acc = acc.add(file[l]);
        }
        acc.store(&mut orow[l * 8..]);
    }
}

/// One output row of `A × B`: `orow = arow × B`, folding four k-steps into
/// each pass over `orow` in 8-wide lanes. The summation order for every
/// output element is ascending k regardless of how rows were chunked.
#[inline(always)]
fn matmul_row_axpy4(arow: &[f32], b: &[f32], k: usize, m: usize, orow: &mut [f32]) {
    let mut kk = 0usize;
    while kk + 4 <= k {
        let (a0, a1, a2, a3) = (arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3]);
        let b0 = &b[kk * m..kk * m + m];
        let b1 = &b[(kk + 1) * m..(kk + 1) * m + m];
        let b2 = &b[(kk + 2) * m..(kk + 2) * m + m];
        let b3 = &b[(kk + 3) * m..(kk + 3) * m + m];
        let (v0, v1, v2, v3) = (
            F32x8::splat(a0),
            F32x8::splat(a1),
            F32x8::splat(a2),
            F32x8::splat(a3),
        );
        let mut j = 0usize;
        while j + 8 <= m {
            let t = v0
                .mul(F32x8::load(&b0[j..]))
                .add(v1.mul(F32x8::load(&b1[j..])))
                .add(v2.mul(F32x8::load(&b2[j..])))
                .add(v3.mul(F32x8::load(&b3[j..])));
            F32x8::load(&orow[j..]).add(t).store(&mut orow[j..]);
            j += 8;
        }
        while j < m {
            orow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
            j += 1;
        }
        kk += 4;
    }
    while kk < k {
        let a = arow[kk];
        let brow = &b[kk * m..kk * m + m];
        for (o, &x) in orow.iter_mut().zip(brow) {
            *o += a * x;
        }
        kk += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let m = Mat::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(Mat::scalar(7.0).item(), 7.0);
    }

    #[test]
    fn matmul_small_known_result() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Mat::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_nt_equals_matmul_of_transpose() {
        let a = Mat::from_fn(3, 4, |r, c| (r + c) as f32 * 0.3 - 1.0);
        let b = Mat::from_fn(2, 4, |r, c| (r * c) as f32 * 0.1 + 0.5);
        let got = a.matmul_nt(&b);
        let want = a.matmul(&b.transpose());
        for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_tn_equals_transpose_matmul() {
        let a = Mat::from_fn(4, 3, |r, c| (r as f32 - c as f32) * 0.25);
        let b = Mat::from_fn(4, 2, |r, c| (r + 2 * c) as f32 * 0.5);
        let got = a.matmul_tn(&b);
        let want = a.transpose().matmul(&b);
        for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_round_trips() {
        let m = Mat::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn add_assign_scaled_accumulates() {
        let mut a = Mat::filled(2, 2, 1.0);
        let b = Mat::filled(2, 2, 2.0);
        a.add_assign_scaled(&b, 0.5);
        assert_eq!(a.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn frob_sq_and_max_abs() {
        let m = Mat::from_vec(1, 3, vec![3.0, -4.0, 0.0]);
        assert_eq!(m.frob_sq(), 25.0);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        Mat::zeros(2, 3).matmul(&Mat::zeros(2, 3));
    }
}
