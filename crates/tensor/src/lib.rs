//! A compact tensor + reverse-mode autodiff engine for the GraphAug
//! reproduction.
//!
//! The paper's training loop needs exactly one unusual capability beyond a
//! textbook autodiff tape: **differentiable edge-weighted sparse message
//! passing** ([`Graph::spmm_ew`]), so that gradients flow from the
//! recommendation losses back into the Gumbel-sampled edge weights of the
//! augmented views (paper Eq. 4–5). Everything else — dense matmuls,
//! activations, gather/scatter, normalized-row cosine machinery, reductions —
//! is the standard vocabulary of GNN collaborative filtering, implemented
//! over a row-major [`Mat`].
//!
//! # Usage model
//!
//! ```
//! use graphaug_tensor::{Graph, Mat, Optimizer, ParamStore};
//!
//! let mut store = ParamStore::new();
//! let w = store.register(Mat::scalar(4.0));
//! for _ in 0..100 {
//!     let mut g = Graph::new();
//!     let wn = store.node(&mut g, w);
//!     let shifted = g.add_scalar(wn, -1.5);
//!     let sq = g.square(shifted);
//!     let loss = g.sum_all(sq);
//!     g.backward(loss);
//!     store.apply_grads(&g, &[(w, wn)], Optimizer::adam(0.1));
//! }
//! assert!((store.value(w).item() - 1.5).abs() < 1e-2);
//! ```

pub mod init;
pub mod mat;
pub mod ops;
pub mod optim;
mod pool;
pub mod tape;

pub use mat::Mat;
pub use ops::{sigmoid, softplus, PairGatherPlan, SpPair};
pub use optim::{Optimizer, ParamId, ParamState, ParamStore, ParamStoreState, RestoreError};
pub use tape::{Graph, NodeId};

/// The 8-lane SIMD layer the kernel crates build on (`F32x8`, `dot8`, the
/// `GRAPHAUG_SIMD` dispatch switches). Lives in `graphaug-par` so the sparse
/// kernels can share it; re-exported here as the public surface.
pub use graphaug_par::simd;
pub use graphaug_par::{dot8, set_simd_enabled, simd_available, simd_enabled, F32x8};
