//! Thread-local recycling of large [`Mat`](crate::Mat) buffers.
//!
//! Tape workloads allocate the same handful of large buffers every training
//! step (edge features, activations, gradients) and free them all when the
//! tape is dropped. Multi-megabyte blocks round-tripped through the global
//! allocator are typically returned to the OS, so every step pays first-touch
//! page faults that on small machines cost several times the arithmetic on
//! the buffer. A bounded per-thread free list keeps the hottest buffers warm
//! instead.
//!
//! Correctness notes:
//! - Recycled buffers are handed out *cleared* (`len == 0`); every `Mat`
//!   constructor then writes all `rows × cols` elements (zero-fill, clone
//!   copy, or element-wise fill) before the buffer is readable, so stale
//!   contents can never leak into results.
//! - The pool is `thread_local`, so no locking and no cross-thread traffic.
//!   Worker threads of the parallel runtime are scoped per call; anything
//!   they pool dies with them, which is harmless.
//! - Determinism is unaffected: pooling only changes *where* a buffer's
//!   pages live, never the values written to them.

use std::cell::RefCell;

/// Buffers below this element count are cheap to allocate fresh; pooling
/// them would just churn the free list.
const MIN_ELEMS: usize = 4096;
/// At most this many buffers are cached per thread.
const MAX_BUFS: usize = 32;
/// Total cached capacity per thread is bounded to 16 Mi elements (64 MiB).
const MAX_TOTAL_ELEMS: usize = 16 << 20;

struct Pool {
    bufs: Vec<Vec<f32>>,
    total: usize,
}

thread_local! {
    static POOL: RefCell<Pool> = const {
        RefCell::new(Pool {
            bufs: Vec::new(),
            total: 0,
        })
    };
}

/// Returns a cleared buffer with `capacity >= n` — the smallest adequate
/// cached one, or a fresh allocation when none fits.
pub(crate) fn take(n: usize) -> Vec<f32> {
    if n < MIN_ELEMS {
        return Vec::with_capacity(n);
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let mut best: Option<(usize, usize)> = None; // (slot, capacity)
        for (i, b) in p.bufs.iter().enumerate() {
            let cap = b.capacity();
            if cap >= n && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        match best {
            Some((i, cap)) => {
                let mut b = p.bufs.swap_remove(i);
                p.total -= cap;
                b.clear();
                b
            }
            None => Vec::with_capacity(n),
        }
    })
}

/// Offers a dropped buffer back to this thread's pool. Small buffers and
/// overflow beyond the pool bounds fall through to the global allocator.
pub(crate) fn put(buf: Vec<f32>) {
    let cap = buf.capacity();
    if cap < MIN_ELEMS {
        return;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.bufs.len() >= MAX_BUFS || p.total + cap > MAX_TOTAL_ELEMS {
            return;
        }
        p.total += cap;
        p.bufs.push(buf);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_recycled_and_cleared() {
        // Use an unusual capacity so other tests on this thread don't race
        // for the same buffer.
        let n = MIN_ELEMS + 12_345;
        let mut first = take(n);
        first.resize(n, 7.0);
        let ptr = first.as_ptr();
        put(first);
        let again = take(n);
        assert_eq!(again.as_ptr(), ptr, "expected the pooled buffer back");
        assert!(again.is_empty(), "pooled buffers must come back cleared");
        assert!(again.capacity() >= n);
    }

    #[test]
    fn small_buffers_bypass_the_pool() {
        let buf = take(8);
        assert!(buf.capacity() < MIN_ELEMS || buf.capacity() >= 8);
        put(vec![0.0; 8]); // must not panic or pollute
        let buf2 = take(8);
        assert!(buf2.is_empty());
    }
}
