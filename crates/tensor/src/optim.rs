//! Parameter storage and first-order optimizers.
//!
//! Parameters live in a [`ParamStore`] that outlives the per-step tapes.
//! Each training step snapshots parameters onto the tape with
//! [`ParamStore::node`], runs forward/backward, and then applies the
//! collected gradients with [`ParamStore::apply_grads`].

use crate::mat::Mat;
use crate::tape::{Graph, NodeId};

/// Identifier of a stored parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

struct ParamSlot {
    value: Mat,
    /// Adam first moment.
    m: Mat,
    /// Adam second moment.
    v: Mat,
}

/// Optimizer choice for [`ParamStore::apply_grads`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Optimizer {
    /// Vanilla stochastic gradient descent.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// Adam with the usual bias correction.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay (typically 0.9).
        beta1: f32,
        /// Second-moment decay (typically 0.999).
        beta2: f32,
        /// Denominator fuzz (typically 1e-8).
        eps: f32,
    },
}

impl Optimizer {
    /// Adam with standard hyperparameters at the given learning rate.
    pub fn adam(lr: f32) -> Self {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Plain SGD at the given learning rate.
    pub fn sgd(lr: f32) -> Self {
        Optimizer::Sgd { lr }
    }
}

/// Holds model parameters and their optimizer state across steps.
#[derive(Default)]
pub struct ParamStore {
    slots: Vec<ParamSlot>,
    /// Global step counter (for Adam bias correction).
    t: u64,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ParamStore {
            slots: Vec::new(),
            t: 0,
        }
    }

    /// Registers a parameter, returning its id.
    pub fn register(&mut self, value: Mat) -> ParamId {
        let (r, c) = value.shape();
        self.slots.push(ParamSlot {
            value,
            m: Mat::zeros(r, c),
            v: Mat::zeros(r, c),
        });
        ParamId(self.slots.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Mat {
        &self.slots[id.0].value
    }

    /// Mutable access (e.g. for loading pretrained values in tests).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Mat {
        &mut self.slots[id.0].value
    }

    /// Snapshots the parameter onto a tape as a leaf node.
    pub fn node(&self, g: &mut Graph, id: ParamId) -> NodeId {
        g.constant(self.slots[id.0].value.clone())
    }

    /// Total number of scalar parameters (for cost reporting).
    pub fn scalar_count(&self) -> usize {
        self.slots.iter().map(|s| s.value.len()).sum()
    }

    /// Sum of squared Frobenius norms of all parameters (weight-decay term).
    pub fn frob_sq_total(&self) -> f32 {
        self.slots.iter().map(|s| s.value.frob_sq()).sum()
    }

    /// Applies one optimizer step for the given `(param, tape-node)` pairs,
    /// reading gradients from `graph`. Parameters whose node received no
    /// gradient are left untouched. Advances the shared step counter once.
    pub fn apply_grads(&mut self, graph: &Graph, pairs: &[(ParamId, NodeId)], opt: Optimizer) {
        self.t += 1;
        for &(pid, nid) in pairs {
            let Some(grad) = graph.grad(nid) else {
                continue;
            };
            self.step_one(pid, grad, opt);
        }
    }

    /// Applies one optimizer update to a single parameter from an explicit
    /// gradient matrix.
    pub fn step_one(&mut self, id: ParamId, grad: &Mat, opt: Optimizer) {
        let slot = &mut self.slots[id.0];
        assert_eq!(slot.value.shape(), grad.shape(), "gradient shape mismatch");
        match opt {
            Optimizer::Sgd { lr } => {
                slot.value.add_assign_scaled(grad, -lr);
            }
            Optimizer::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                let t = self.t.max(1) as i32;
                let bc1 = 1.0 - beta1.powi(t);
                let bc2 = 1.0 - beta2.powi(t);
                let val = slot.value.as_mut_slice();
                let m = slot.m.as_mut_slice();
                let v = slot.v.as_mut_slice();
                for i in 0..val.len() {
                    let gi = grad.as_slice()[i];
                    m[i] = beta1 * m[i] + (1.0 - beta1) * gi;
                    v[i] = beta2 * v[i] + (1.0 - beta2) * gi * gi;
                    let mhat = m[i] / bc1;
                    let vhat = v[i] / bc2;
                    val[i] -= lr * mhat / (vhat.sqrt() + eps);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_moves_against_gradient() {
        let mut store = ParamStore::new();
        let p = store.register(Mat::scalar(1.0));
        store.t = 1;
        store.step_one(p, &Mat::scalar(0.5), Optimizer::sgd(0.1));
        assert!((store.value(p).item() - 0.95).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // minimize f(x) = (x - 3)^2 with analytic gradient 2(x-3).
        let mut store = ParamStore::new();
        let p = store.register(Mat::scalar(0.0));
        for _ in 0..600 {
            store.t += 1;
            let x = store.value(p).item();
            let g = Mat::scalar(2.0 * (x - 3.0));
            store.step_one(p, &g, Optimizer::adam(0.05));
        }
        assert!((store.value(p).item() - 3.0).abs() < 1e-2);
    }

    #[test]
    fn apply_grads_skips_untouched_params() {
        let mut store = ParamStore::new();
        let p = store.register(Mat::scalar(2.0));
        let mut g = Graph::new();
        let node = store.node(&mut g, p);
        // No backward ran: node has no gradient.
        store.apply_grads(&g, &[(p, node)], Optimizer::sgd(1.0));
        assert_eq!(store.value(p).item(), 2.0);
    }

    #[test]
    fn apply_grads_uses_tape_gradients() {
        let mut store = ParamStore::new();
        let p = store.register(Mat::scalar(2.0));
        let mut g = Graph::new();
        let node = store.node(&mut g, p);
        let sq = g.square(node);
        let loss = g.sum_all(sq);
        g.backward(loss);
        store.apply_grads(&g, &[(p, node)], Optimizer::sgd(0.25));
        // d(x^2)/dx = 4 at x = 2; new x = 2 - 0.25*4 = 1.
        assert!((store.value(p).item() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn scalar_count_and_frob() {
        let mut store = ParamStore::new();
        store.register(Mat::filled(2, 3, 1.0));
        store.register(Mat::filled(1, 4, 2.0));
        assert_eq!(store.scalar_count(), 10);
        assert!((store.frob_sq_total() - (6.0 + 16.0)).abs() < 1e-6);
    }
}
