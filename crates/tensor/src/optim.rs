//! Parameter storage and first-order optimizers.
//!
//! Parameters live in a [`ParamStore`] that outlives the per-step tapes.
//! Each training step snapshots parameters onto the tape with
//! [`ParamStore::node`], runs forward/backward, and then applies the
//! collected gradients with [`ParamStore::apply_grads`].

use crate::mat::Mat;
use crate::tape::{Graph, NodeId};

/// Identifier of a stored parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

struct ParamSlot {
    value: Mat,
    /// Adam first moment.
    m: Mat,
    /// Adam second moment.
    v: Mat,
}

/// Optimizer choice for [`ParamStore::apply_grads`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Optimizer {
    /// Vanilla stochastic gradient descent.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// Adam with the usual bias correction.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay (typically 0.9).
        beta1: f32,
        /// Second-moment decay (typically 0.999).
        beta2: f32,
        /// Denominator fuzz (typically 1e-8).
        eps: f32,
    },
}

impl Optimizer {
    /// Adam with standard hyperparameters at the given learning rate.
    pub fn adam(lr: f32) -> Self {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Plain SGD at the given learning rate.
    pub fn sgd(lr: f32) -> Self {
        Optimizer::Sgd { lr }
    }
}

/// Holds model parameters and their optimizer state across steps.
#[derive(Default)]
pub struct ParamStore {
    slots: Vec<ParamSlot>,
    /// Global step counter (for Adam bias correction).
    t: u64,
}

/// Snapshot of one parameter slot: value plus both Adam moments.
#[derive(Clone, Debug)]
pub struct ParamState {
    /// Parameter value.
    pub value: Mat,
    /// Adam first moment.
    pub m: Mat,
    /// Adam second moment.
    pub v: Mat,
}

/// Full optimizer-state snapshot of a [`ParamStore`] — everything needed to
/// resume training bit-identically: values, Adam moments, and the shared
/// step counter behind the bias correction.
#[derive(Clone, Debug)]
pub struct ParamStoreState {
    /// The shared Adam step counter.
    pub t: u64,
    /// One entry per registered parameter, in registration order.
    pub slots: Vec<ParamState>,
}

/// Why a [`ParamStore::restore`] was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RestoreError {
    /// The snapshot holds a different number of parameters than the store.
    SlotCount {
        /// Parameters registered in the store.
        expected: usize,
        /// Parameters present in the snapshot.
        got: usize,
    },
    /// A snapshot slot's shape does not match the registered parameter.
    Shape {
        /// Index of the mismatched slot.
        slot: usize,
        /// Registered `(rows, cols)`.
        expected: (usize, usize),
        /// Snapshot `(rows, cols)`.
        got: (usize, usize),
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::SlotCount { expected, got } => {
                write!(f, "snapshot has {got} parameters, store has {expected}")
            }
            RestoreError::Shape {
                slot,
                expected,
                got,
            } => write!(
                f,
                "snapshot slot {slot} has shape {got:?}, store expects {expected:?}"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ParamStore {
            slots: Vec::new(),
            t: 0,
        }
    }

    /// Registers a parameter, returning its id.
    pub fn register(&mut self, value: Mat) -> ParamId {
        let (r, c) = value.shape();
        self.slots.push(ParamSlot {
            value,
            m: Mat::zeros(r, c),
            v: Mat::zeros(r, c),
        });
        ParamId(self.slots.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Mat {
        &self.slots[id.0].value
    }

    /// Mutable access (e.g. for loading pretrained values in tests).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Mat {
        &mut self.slots[id.0].value
    }

    /// Snapshots the parameter onto a tape as a leaf node.
    pub fn node(&self, g: &mut Graph, id: ParamId) -> NodeId {
        g.constant(self.slots[id.0].value.clone())
    }

    /// Total number of scalar parameters (for cost reporting).
    pub fn scalar_count(&self) -> usize {
        self.slots.iter().map(|s| s.value.len()).sum()
    }

    /// Sum of squared Frobenius norms of all parameters (weight-decay term).
    pub fn frob_sq_total(&self) -> f32 {
        self.slots.iter().map(|s| s.value.frob_sq()).sum()
    }

    /// The shared Adam step counter (number of optimizer steps applied).
    pub fn step_count(&self) -> u64 {
        self.t
    }

    /// Snapshots every parameter value, both Adam moments, and the step
    /// counter — the optimizer half of a training checkpoint.
    pub fn snapshot(&self) -> ParamStoreState {
        ParamStoreState {
            t: self.t,
            slots: self
                .slots
                .iter()
                .map(|s| ParamState {
                    value: s.value.clone(),
                    m: s.m.clone(),
                    v: s.v.clone(),
                })
                .collect(),
        }
    }

    /// Restores a snapshot taken by [`ParamStore::snapshot`]. The snapshot
    /// must cover exactly the registered parameters with matching shapes;
    /// on error the store is left untouched.
    pub fn restore(&mut self, state: &ParamStoreState) -> Result<(), RestoreError> {
        if state.slots.len() != self.slots.len() {
            return Err(RestoreError::SlotCount {
                expected: self.slots.len(),
                got: state.slots.len(),
            });
        }
        for (i, (slot, snap)) in self.slots.iter().zip(&state.slots).enumerate() {
            if slot.value.shape() != snap.value.shape()
                || slot.m.shape() != snap.m.shape()
                || slot.v.shape() != snap.v.shape()
            {
                return Err(RestoreError::Shape {
                    slot: i,
                    expected: slot.value.shape(),
                    got: snap.value.shape(),
                });
            }
        }
        self.t = state.t;
        for (slot, snap) in self.slots.iter_mut().zip(&state.slots) {
            slot.value = snap.value.clone();
            slot.m = snap.m.clone();
            slot.v = snap.v.clone();
        }
        Ok(())
    }

    /// Applies one optimizer step from explicit `(param, gradient)` pairs,
    /// each gradient multiplied by `scale` (the global gradient-clipping
    /// factor — `1.0` for no clipping). Advances the shared step counter
    /// once. Unlike [`ParamStore::apply_grads`] the caller owns the
    /// gradients, which lets a training supervisor inspect them (finiteness,
    /// norms) *before* committing the update.
    pub fn apply_step(&mut self, grads: &[(ParamId, Mat)], opt: Optimizer, scale: f32) {
        self.t += 1;
        for (pid, grad) in grads {
            self.step_one_scaled(*pid, grad, opt, scale);
        }
    }

    /// Applies one optimizer step for the given `(param, tape-node)` pairs,
    /// reading gradients from `graph`. Parameters whose node received no
    /// gradient are left untouched. Advances the shared step counter once.
    pub fn apply_grads(&mut self, graph: &Graph, pairs: &[(ParamId, NodeId)], opt: Optimizer) {
        self.t += 1;
        for &(pid, nid) in pairs {
            let Some(grad) = graph.grad(nid) else {
                continue;
            };
            self.step_one(pid, grad, opt);
        }
    }

    /// Applies one optimizer update to a single parameter from an explicit
    /// gradient matrix.
    pub fn step_one(&mut self, id: ParamId, grad: &Mat, opt: Optimizer) {
        self.step_one_scaled(id, grad, opt, 1.0);
    }

    /// [`ParamStore::step_one`] with the gradient multiplied by `scale`
    /// (global-norm clipping) without materializing a scaled copy.
    fn step_one_scaled(&mut self, id: ParamId, grad: &Mat, opt: Optimizer, scale: f32) {
        let slot = &mut self.slots[id.0];
        assert_eq!(slot.value.shape(), grad.shape(), "gradient shape mismatch");
        match opt {
            Optimizer::Sgd { lr } => {
                slot.value.add_assign_scaled(grad, -lr * scale);
            }
            Optimizer::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                let t = self.t.max(1) as i32;
                let bc1 = 1.0 - beta1.powi(t);
                let bc2 = 1.0 - beta2.powi(t);
                let val = slot.value.as_mut_slice();
                let m = slot.m.as_mut_slice();
                let v = slot.v.as_mut_slice();
                for i in 0..val.len() {
                    let gi = grad.as_slice()[i] * scale;
                    m[i] = beta1 * m[i] + (1.0 - beta1) * gi;
                    v[i] = beta2 * v[i] + (1.0 - beta2) * gi * gi;
                    let mhat = m[i] / bc1;
                    let vhat = v[i] / bc2;
                    val[i] -= lr * mhat / (vhat.sqrt() + eps);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_moves_against_gradient() {
        let mut store = ParamStore::new();
        let p = store.register(Mat::scalar(1.0));
        store.t = 1;
        store.step_one(p, &Mat::scalar(0.5), Optimizer::sgd(0.1));
        assert!((store.value(p).item() - 0.95).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // minimize f(x) = (x - 3)^2 with analytic gradient 2(x-3).
        let mut store = ParamStore::new();
        let p = store.register(Mat::scalar(0.0));
        for _ in 0..600 {
            store.t += 1;
            let x = store.value(p).item();
            let g = Mat::scalar(2.0 * (x - 3.0));
            store.step_one(p, &g, Optimizer::adam(0.05));
        }
        assert!((store.value(p).item() - 3.0).abs() < 1e-2);
    }

    #[test]
    fn apply_grads_skips_untouched_params() {
        let mut store = ParamStore::new();
        let p = store.register(Mat::scalar(2.0));
        let mut g = Graph::new();
        let node = store.node(&mut g, p);
        // No backward ran: node has no gradient.
        store.apply_grads(&g, &[(p, node)], Optimizer::sgd(1.0));
        assert_eq!(store.value(p).item(), 2.0);
    }

    #[test]
    fn apply_grads_uses_tape_gradients() {
        let mut store = ParamStore::new();
        let p = store.register(Mat::scalar(2.0));
        let mut g = Graph::new();
        let node = store.node(&mut g, p);
        let sq = g.square(node);
        let loss = g.sum_all(sq);
        g.backward(loss);
        store.apply_grads(&g, &[(p, node)], Optimizer::sgd(0.25));
        // d(x^2)/dx = 4 at x = 2; new x = 2 - 0.25*4 = 1.
        assert!((store.value(p).item() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn snapshot_restore_round_trips_values_moments_and_step() {
        let mut store = ParamStore::new();
        let p = store.register(Mat::scalar(0.0));
        for _ in 0..5 {
            store.t += 1;
            let x = store.value(p).item();
            store.step_one(p, &Mat::scalar(2.0 * (x - 3.0)), Optimizer::adam(0.05));
        }
        let snap = store.snapshot();
        assert_eq!(snap.t, 5);
        // Diverge, then restore: continuing from the snapshot must replay
        // the exact trajectory of a store that never diverged.
        let mut twin = ParamStore::new();
        let q = twin.register(Mat::scalar(0.0));
        twin.restore(&snap).unwrap();
        for _ in 0..3 {
            store.t += 1;
            twin.t += 1;
            let gx = Mat::scalar(2.0 * (store.value(p).item() - 3.0));
            let gy = Mat::scalar(2.0 * (twin.value(q).item() - 3.0));
            store.step_one(p, &gx, Optimizer::adam(0.05));
            twin.step_one(q, &gy, Optimizer::adam(0.05));
        }
        assert_eq!(
            store.value(p).item().to_bits(),
            twin.value(q).item().to_bits(),
            "restored store must continue bit-identically"
        );
    }

    #[test]
    fn restore_rejects_mismatched_snapshots() {
        let mut store = ParamStore::new();
        store.register(Mat::filled(2, 3, 1.0));
        let mut other = ParamStore::new();
        other.register(Mat::filled(2, 3, 0.0));
        other.register(Mat::filled(1, 1, 0.0));
        assert_eq!(
            store.restore(&other.snapshot()),
            Err(RestoreError::SlotCount {
                expected: 1,
                got: 2
            })
        );
        let mut wrong_shape = ParamStore::new();
        wrong_shape.register(Mat::filled(3, 2, 0.0));
        assert!(matches!(
            store.restore(&wrong_shape.snapshot()),
            Err(RestoreError::Shape { slot: 0, .. })
        ));
        // The failed restores must not have touched the store.
        assert_eq!(store.value(ParamId(0)).as_slice(), &[1.0; 6]);
    }

    #[test]
    fn apply_step_scales_the_gradient() {
        let mut a = ParamStore::new();
        let pa = a.register(Mat::scalar(1.0));
        let mut b = ParamStore::new();
        let pb = b.register(Mat::scalar(1.0));
        a.apply_step(&[(pa, Mat::scalar(4.0))], Optimizer::sgd(0.1), 0.5);
        b.apply_step(&[(pb, Mat::scalar(2.0))], Optimizer::sgd(0.1), 1.0);
        assert_eq!(a.value(pa).item().to_bits(), b.value(pb).item().to_bits());
        assert_eq!(a.step_count(), 1);
    }

    #[test]
    fn scalar_count_and_frob() {
        let mut store = ParamStore::new();
        store.register(Mat::filled(2, 3, 1.0));
        store.register(Mat::filled(1, 4, 2.0));
        assert_eq!(store.scalar_count(), 10);
        assert!((store.frob_sq_total() - (6.0 + 16.0)).abs() < 1e-6);
    }
}
