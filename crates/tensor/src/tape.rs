//! Define-by-run reverse-mode autodiff tape.
//!
//! A [`Graph`] is rebuilt for every optimization step: builder methods
//! (`matmul`, `spmm`, `sigmoid`, …) compute forward values eagerly and record
//! an [`Op`]; [`Graph::backward`] then walks the tape in reverse, accumulating
//! gradients into each node. Because operands always precede their consumers
//! on the tape, the backward pass is a single reverse sweep with
//! `split_at_mut` providing disjoint access to a node and its operands.

use std::sync::Arc;

use graphaug_sparse::Csr;

use crate::mat::Mat;
use crate::ops::{sigmoid, softplus, Op, PairGatherPlan, SpPair};

/// Identifier of a node on the tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

struct Node {
    op: Op,
    value: Mat,
    grad: Option<Mat>,
}

/// The autodiff tape. See the module docs for the usage model.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph {
            nodes: Vec::with_capacity(128),
        }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Forward value of a node.
    pub fn value(&self, id: NodeId) -> &Mat {
        &self.nodes[id.0].value
    }

    /// Gradient of a node after [`Graph::backward`], if it received one.
    pub fn grad(&self, id: NodeId) -> Option<&Mat> {
        self.nodes[id.0].grad.as_ref()
    }

    fn push(&mut self, op: Op, value: Mat) -> NodeId {
        debug_assert!(value.all_finite(), "non-finite forward value");
        self.nodes.push(Node {
            op,
            value,
            grad: None,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Truncates the tape back to its first `len` nodes, dropping every
    /// later node together with its value and gradient (freed buffers go
    /// back to the thread-local pool). Lets a stepper record a static
    /// prefix once and rewind before re-recording the per-step suffix,
    /// instead of growing one tape without bound. Gradients already stored
    /// on surviving prefix nodes are left untouched.
    pub fn truncate(&mut self, len: usize) {
        self.nodes.truncate(len);
    }

    /// Leaf node holding a constant (or a parameter snapshot).
    pub fn constant(&mut self, value: Mat) -> NodeId {
        self.push(Op::Leaf, value)
    }

    /// `a + b`
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip_map(self.value(b), |x, y| x + y);
        self.push(Op::Add(a, b), v)
    }

    /// `a - b`
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip_map(self.value(b), |x, y| x - y);
        self.push(Op::Sub(a, b), v)
    }

    /// Element-wise `a ⊙ b`
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).zip_map(self.value(b), |x, y| x * y);
        self.push(Op::Mul(a, b), v)
    }

    /// `c · a`
    pub fn scale(&mut self, a: NodeId, c: f32) -> NodeId {
        let v = self.value(a).map(|x| c * x);
        self.push(Op::Scale(a, c), v)
    }

    /// `a + c`
    pub fn add_scalar(&mut self, a: NodeId, c: f32) -> NodeId {
        let v = self.value(a).map(|x| x + c);
        self.push(Op::AddScalar(a, c), v)
    }

    /// Element-wise product with a constant matrix (mask / noise injection).
    pub fn mul_const(&mut self, a: NodeId, k: Arc<Mat>) -> NodeId {
        let v = self.value(a).zip_map(&k, |x, y| x * y);
        self.push(Op::MulConst(a, k), v)
    }

    /// Element-wise sum with a constant matrix.
    pub fn add_const(&mut self, a: NodeId, k: Arc<Mat>) -> NodeId {
        let v = self.value(a).zip_map(&k, |x, y| x + y);
        self.push(Op::AddConst(a, k), v)
    }

    /// Dense `a × b`
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), v)
    }

    /// Dense `a × bᵀ`
    pub fn matmul_nt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.value(a).matmul_nt(self.value(b));
        self.push(Op::MatMulNT(a, b), v)
    }

    /// Broadcasts the `1 × d` node `bias` over the rows of `a`.
    pub fn add_row_broadcast(&mut self, a: NodeId, bias: NodeId) -> NodeId {
        let (av, bv) = (self.value(a), self.value(bias));
        assert_eq!(bv.rows(), 1, "bias must be 1 x d");
        assert_eq!(av.cols(), bv.cols(), "bias width mismatch");
        let mut v = av.clone();
        for r in 0..v.rows() {
            for (o, &b) in v.row_mut(r).iter_mut().zip(bv.row(0)) {
                *o += b;
            }
        }
        self.push(Op::AddRowBroadcast(a, bias), v)
    }

    /// Sparse × dense product with a constant sparse operand.
    pub fn spmm(&mut self, sp: &SpPair, h: NodeId) -> NodeId {
        let hv = self.value(h);
        let d = hv.cols();
        let mut out = Mat::zeros(sp.m.n_rows(), d);
        sp.m.spmm_into(hv.as_slice(), d, out.as_mut_slice());
        self.push(Op::Spmm { sp: sp.clone(), h }, out)
    }

    /// Edge-weighted sparse × dense product: the values of `pattern` are
    /// replaced by the `nnz × 1` node `w`, and gradients flow into both `w`
    /// and `h`. This is what makes GraphAug's sampled views differentiable.
    pub fn spmm_ew(&mut self, pattern: Arc<Csr>, w: NodeId, h: NodeId) -> NodeId {
        let (wv, hv) = (self.value(w), self.value(h));
        assert_eq!(wv.shape(), (pattern.nnz(), 1), "weights must be nnz x 1");
        assert_eq!(hv.rows(), pattern.n_cols(), "dense operand height mismatch");
        let d = hv.cols();
        let mut out = Mat::zeros(pattern.n_rows(), d);
        pattern.spmm_ew_into(wv.as_slice(), hv.as_slice(), d, out.as_mut_slice());
        self.push(Op::SpmmEw { pattern, w, h }, out)
    }

    /// Fused endpoint-feature gather: `y[e] = [src[left[e]] | src[right[e]]]`
    /// for a precomputed [`PairGatherPlan`]. Replaces the
    /// `gather_rows + gather_rows + concat_cols` chain of the edge scorer
    /// with one tape node and one indexed copy per call.
    pub fn gather_concat_pair(&mut self, src: NodeId, plan: Arc<PairGatherPlan>) -> NodeId {
        let sv = self.value(src);
        assert_eq!(sv.rows(), plan.n_src(), "plan built for different source");
        let d = sv.cols();
        let mut v = Mat::zeros(plan.n_pairs(), 2 * d);
        plan.gather_into(sv.as_slice(), d, v.as_mut_slice());
        self.push(Op::GatherConcatPair { src, plan }, v)
    }

    /// Row gather: `y[i] = src[idx[i]]`. Backward scatter-adds.
    pub fn gather_rows(&mut self, src: NodeId, idx: Arc<Vec<u32>>) -> NodeId {
        let sv = self.value(src);
        let d = sv.cols();
        let mut v = Mat::zeros(idx.len(), d);
        for (i, &r) in idx.iter().enumerate() {
            v.row_mut(i).copy_from_slice(sv.row(r as usize));
        }
        self.push(Op::GatherRows { src, idx }, v)
    }

    /// Column-wise concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (av, bv) = (self.value(a), self.value(b));
        assert_eq!(av.rows(), bv.rows(), "concat_cols row mismatch");
        let (n, da, db) = (av.rows(), av.cols(), bv.cols());
        let mut v = Mat::zeros(n, da + db);
        for r in 0..n {
            v.row_mut(r)[..da].copy_from_slice(av.row(r));
            v.row_mut(r)[da..].copy_from_slice(bv.row(r));
        }
        self.push(Op::ConcatCols(a, b), v)
    }

    /// Column slice `src[:, start..end]`.
    pub fn slice_cols(&mut self, src: NodeId, start: usize, end: usize) -> NodeId {
        let sv = self.value(src);
        assert!(start < end && end <= sv.cols(), "bad column slice");
        let mut v = Mat::zeros(sv.rows(), end - start);
        for r in 0..sv.rows() {
            v.row_mut(r).copy_from_slice(&sv.row(r)[start..end]);
        }
        self.push(Op::SliceCols { src, start, end }, v)
    }

    /// Logistic sigmoid, element-wise.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(sigmoid);
        self.push(Op::Sigmoid(a), v)
    }

    /// LeakyReLU with the given negative slope.
    pub fn leaky_relu(&mut self, a: NodeId, slope: f32) -> NodeId {
        let v = self.value(a).map(|x| if x > 0.0 { x } else { slope * x });
        self.push(Op::LeakyRelu(a, slope), v)
    }

    /// Hyperbolic tangent, element-wise.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f32::tanh);
        self.push(Op::Tanh(a), v)
    }

    /// Exponential, element-wise.
    pub fn exp(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f32::exp);
        self.push(Op::Exp(a), v)
    }

    /// Natural log, element-wise. The input must be strictly positive.
    pub fn ln(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(f32::ln);
        self.push(Op::Ln(a), v)
    }

    /// Element-wise square.
    pub fn square(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(|x| x * x);
        self.push(Op::Square(a), v)
    }

    /// Numerically-stable softplus, element-wise.
    pub fn softplus(&mut self, a: NodeId) -> NodeId {
        let v = self.value(a).map(softplus);
        self.push(Op::Softplus(a), v)
    }

    /// Row-wise L2 normalization (unit rows; zero rows stay zero).
    pub fn l2_normalize_rows(&mut self, a: NodeId) -> NodeId {
        let av = self.value(a);
        let mut v = av.clone();
        for r in 0..v.rows() {
            let row = v.row_mut(r);
            let n = row.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
            for x in row.iter_mut() {
                *x /= n;
            }
        }
        self.push(Op::L2NormalizeRows(a), v)
    }

    /// Row-wise dot product → `n × 1`.
    pub fn rowwise_dot(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (av, bv) = (self.value(a), self.value(b));
        assert_eq!(av.shape(), bv.shape(), "rowwise_dot shape mismatch");
        let v = Mat::from_fn(av.rows(), 1, |r, _| {
            av.row(r).iter().zip(bv.row(r)).map(|(x, y)| x * y).sum()
        });
        self.push(Op::RowwiseDot(a, b), v)
    }

    /// Row-wise log-sum-exp → `n × 1` (stable).
    pub fn logsumexp_rows(&mut self, a: NodeId) -> NodeId {
        let av = self.value(a);
        let v = Mat::from_fn(av.rows(), 1, |r, _| {
            let row = av.row(r);
            let m = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln()
        });
        self.push(Op::LogsumexpRows(a), v)
    }

    /// Diagonal of a square matrix → `n × 1`.
    pub fn diag_nn(&mut self, a: NodeId) -> NodeId {
        let av = self.value(a);
        assert_eq!(av.rows(), av.cols(), "diag_nn requires a square matrix");
        let v = Mat::from_fn(av.rows(), 1, |r, _| av.get(r, r));
        self.push(Op::DiagNN(a), v)
    }

    /// Sum of all elements → `1 × 1`.
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let v = Mat::scalar(self.value(a).as_slice().iter().sum());
        self.push(Op::SumAll(a), v)
    }

    /// Mean of all elements → `1 × 1`.
    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        let av = self.value(a);
        let v = Mat::scalar(av.as_slice().iter().sum::<f32>() / av.len() as f32);
        self.push(Op::MeanAll(a), v)
    }

    /// Broadcast-multiplies `a` by the `1 × 1` scalar node `s` — the
    /// learnable hop-mixing primitive of the mixhop encoder.
    pub fn scale_by_scalar(&mut self, a: NodeId, s: NodeId) -> NodeId {
        assert_eq!(self.value(s).shape(), (1, 1), "scale factor must be 1 x 1");
        let sv = self.value(s).item();
        let v = self.value(a).map(|x| sv * x);
        self.push(Op::ScaleByScalar(a, s), v)
    }

    /// Runs the reverse pass from the scalar node `loss`.
    ///
    /// Gradients accumulate into every node reachable from `loss`; query them
    /// with [`Graph::grad`]. Panics if `loss` is not `1 × 1`.
    pub fn backward(&mut self, loss: NodeId) {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "loss must be a scalar node"
        );
        self.nodes[loss.0].grad = Some(Mat::scalar(1.0));

        for i in (0..self.nodes.len()).rev() {
            if self.nodes[i].grad.is_none() {
                continue;
            }
            let (left, right) = self.nodes.split_at_mut(i);
            let node = &right[0];
            let g = node.grad.as_ref().expect("checked above");
            match &node.op {
                Op::Leaf => {}
                Op::Add(a, b) => {
                    Self::acc(&mut left[a.0].grad, g.clone());
                    Self::acc(&mut left[b.0].grad, g.clone());
                }
                Op::Sub(a, b) => {
                    Self::acc(&mut left[a.0].grad, g.clone());
                    Self::acc(&mut left[b.0].grad, g.map(|x| -x));
                }
                Op::Mul(a, b) => {
                    let da = g.zip_map(&left[b.0].value, |x, y| x * y);
                    let db = g.zip_map(&left[a.0].value, |x, y| x * y);
                    Self::acc(&mut left[a.0].grad, da);
                    Self::acc(&mut left[b.0].grad, db);
                }
                Op::Scale(a, c) => {
                    let c = *c;
                    Self::acc(&mut left[a.0].grad, g.map(|x| c * x));
                }
                Op::AddScalar(a, _) => {
                    Self::acc(&mut left[a.0].grad, g.clone());
                }
                Op::MulConst(a, k) => {
                    let da = g.zip_map(k, |x, y| x * y);
                    Self::acc(&mut left[a.0].grad, da);
                }
                Op::AddConst(a, _) => {
                    Self::acc(&mut left[a.0].grad, g.clone());
                }
                Op::MatMul(a, b) => {
                    let da = g.matmul_nt(&left[b.0].value);
                    let db = left[a.0].value.matmul_tn(g);
                    Self::acc(&mut left[a.0].grad, da);
                    Self::acc(&mut left[b.0].grad, db);
                }
                Op::MatMulNT(a, b) => {
                    let da = g.matmul(&left[b.0].value);
                    let db = g.matmul_tn(&left[a.0].value);
                    Self::acc(&mut left[a.0].grad, da);
                    Self::acc(&mut left[b.0].grad, db);
                }
                Op::AddRowBroadcast(a, bias) => {
                    let d = g.cols();
                    let mut db = Mat::zeros(1, d);
                    for r in 0..g.rows() {
                        for (o, &x) in db.row_mut(0).iter_mut().zip(g.row(r)) {
                            *o += x;
                        }
                    }
                    Self::acc(&mut left[a.0].grad, g.clone());
                    Self::acc(&mut left[bias.0].grad, db);
                }
                Op::Spmm { sp, h } => {
                    let d = g.cols();
                    // Accumulate straight into the existing gradient buffer
                    // (taken out of its slot to sidestep aliasing) instead of
                    // materializing a temporary and adding it.
                    let mut dh = left[h.0]
                        .grad
                        .take()
                        .unwrap_or_else(|| Mat::zeros(sp.mt.n_rows(), d));
                    sp.mt.spmm_acc_into(g.as_slice(), d, dh.as_mut_slice());
                    left[h.0].grad = Some(dh);
                }
                Op::SpmmEw { pattern, w, h } => {
                    let d = g.cols();
                    // dW_e = dY[r] · H[c]: disjoint per entry, overwrite.
                    let mut dw = Mat::zeros(pattern.nnz(), 1);
                    pattern.spmm_ew_dw_into(
                        left[h.0].value.as_slice(),
                        g.as_slice(),
                        d,
                        dw.as_mut_slice(),
                    );
                    Self::acc(&mut left[w.0].grad, dw);
                    // dH = (w ∘ pattern)ᵀ dY, accumulated in place via the
                    // cached transpose plan.
                    let h_rows = left[h.0].value.rows();
                    let mut dh = left[h.0]
                        .grad
                        .take()
                        .unwrap_or_else(|| Mat::zeros(h_rows, d));
                    pattern.spmm_ew_dh_acc_into(
                        left[w.0].value.as_slice(),
                        g.as_slice(),
                        d,
                        dh.as_mut_slice(),
                    );
                    left[h.0].grad = Some(dh);
                }
                Op::GatherConcatPair { src, plan } => {
                    let d = g.cols() / 2;
                    let src_rows = left[src.0].value.rows();
                    let mut ds = left[src.0]
                        .grad
                        .take()
                        .unwrap_or_else(|| Mat::zeros(src_rows, d));
                    plan.scatter_acc_into(g.as_slice(), d, ds.as_mut_slice());
                    left[src.0].grad = Some(ds);
                }
                Op::GatherRows { src, idx } => {
                    let d = g.cols();
                    let mut ds = Mat::zeros(left[src.0].value.rows(), d);
                    for (i, &r) in idx.iter().enumerate() {
                        let drow = ds.row_mut(r as usize);
                        for (o, &x) in drow.iter_mut().zip(g.row(i)) {
                            *o += x;
                        }
                    }
                    Self::acc(&mut left[src.0].grad, ds);
                }
                Op::ConcatCols(a, b) => {
                    let da_w = left[a.0].value.cols();
                    let n = g.rows();
                    let mut da = Mat::zeros(n, da_w);
                    let mut db = Mat::zeros(n, g.cols() - da_w);
                    for r in 0..n {
                        da.row_mut(r).copy_from_slice(&g.row(r)[..da_w]);
                        db.row_mut(r).copy_from_slice(&g.row(r)[da_w..]);
                    }
                    Self::acc(&mut left[a.0].grad, da);
                    Self::acc(&mut left[b.0].grad, db);
                }
                Op::SliceCols { src, start, end } => {
                    let sv = &left[src.0].value;
                    let mut ds = Mat::zeros(sv.rows(), sv.cols());
                    for r in 0..g.rows() {
                        ds.row_mut(r)[*start..*end].copy_from_slice(g.row(r));
                    }
                    Self::acc(&mut left[src.0].grad, ds);
                }
                Op::Sigmoid(a) => {
                    let da = g.zip_map(&node.value, |gx, y| gx * y * (1.0 - y));
                    Self::acc(&mut left[a.0].grad, da);
                }
                Op::LeakyRelu(a, slope) => {
                    let s = *slope;
                    let da = g.zip_map(&left[a.0].value, |gx, x| if x > 0.0 { gx } else { s * gx });
                    Self::acc(&mut left[a.0].grad, da);
                }
                Op::Tanh(a) => {
                    let da = g.zip_map(&node.value, |gx, y| gx * (1.0 - y * y));
                    Self::acc(&mut left[a.0].grad, da);
                }
                Op::Exp(a) => {
                    let da = g.zip_map(&node.value, |gx, y| gx * y);
                    Self::acc(&mut left[a.0].grad, da);
                }
                Op::Ln(a) => {
                    let da = g.zip_map(&left[a.0].value, |gx, x| gx / x);
                    Self::acc(&mut left[a.0].grad, da);
                }
                Op::Square(a) => {
                    let da = g.zip_map(&left[a.0].value, |gx, x| 2.0 * x * gx);
                    Self::acc(&mut left[a.0].grad, da);
                }
                Op::Softplus(a) => {
                    let da = g.zip_map(&left[a.0].value, |gx, x| gx * sigmoid(x));
                    Self::acc(&mut left[a.0].grad, da);
                }
                Op::L2NormalizeRows(a) => {
                    let av = &left[a.0].value;
                    let y = &node.value;
                    let mut da = Mat::zeros(av.rows(), av.cols());
                    for r in 0..av.rows() {
                        let n = av
                            .row(r)
                            .iter()
                            .map(|x| x * x)
                            .sum::<f32>()
                            .sqrt()
                            .max(1e-12);
                        let dot: f32 = g.row(r).iter().zip(y.row(r)).map(|(gx, yx)| gx * yx).sum();
                        for ((o, &gx), &yx) in da.row_mut(r).iter_mut().zip(g.row(r)).zip(y.row(r))
                        {
                            *o = (gx - yx * dot) / n;
                        }
                    }
                    Self::acc(&mut left[a.0].grad, da);
                }
                Op::RowwiseDot(a, b) => {
                    let (av, bv) = (&left[a.0].value, &left[b.0].value);
                    let mut da = Mat::zeros(av.rows(), av.cols());
                    let mut db = Mat::zeros(av.rows(), av.cols());
                    for r in 0..av.rows() {
                        let gr = g.get(r, 0);
                        for ((o, &x), (p, &y)) in da
                            .row_mut(r)
                            .iter_mut()
                            .zip(bv.row(r))
                            .zip(db.row_mut(r).iter_mut().zip(av.row(r)))
                        {
                            *o = gr * x;
                            *p = gr * y;
                        }
                    }
                    Self::acc(&mut left[a.0].grad, da);
                    Self::acc(&mut left[b.0].grad, db);
                }
                Op::LogsumexpRows(a) => {
                    let av = &left[a.0].value;
                    let y = &node.value;
                    let mut da = Mat::zeros(av.rows(), av.cols());
                    for r in 0..av.rows() {
                        let gr = g.get(r, 0);
                        let yr = y.get(r, 0);
                        for (o, &x) in da.row_mut(r).iter_mut().zip(av.row(r)) {
                            *o = gr * (x - yr).exp();
                        }
                    }
                    Self::acc(&mut left[a.0].grad, da);
                }
                Op::DiagNN(a) => {
                    let n = left[a.0].value.rows();
                    let mut da = Mat::zeros(n, n);
                    for r in 0..n {
                        da.set(r, r, g.get(r, 0));
                    }
                    Self::acc(&mut left[a.0].grad, da);
                }
                Op::SumAll(a) => {
                    let gs = g.item();
                    let (r, c) = left[a.0].value.shape();
                    Self::acc(&mut left[a.0].grad, Mat::filled(r, c, gs));
                }
                Op::MeanAll(a) => {
                    let (r, c) = left[a.0].value.shape();
                    let gs = g.item() / (r * c) as f32;
                    Self::acc(&mut left[a.0].grad, Mat::filled(r, c, gs));
                }
                Op::ScaleByScalar(a, s) => {
                    let sv = left[s.0].value.item();
                    let da = g.map(|x| sv * x);
                    let ds: f32 = g
                        .as_slice()
                        .iter()
                        .zip(left[a.0].value.as_slice())
                        .map(|(gx, ax)| gx * ax)
                        .sum();
                    Self::acc(&mut left[a.0].grad, da);
                    Self::acc(&mut left[s.0].grad, Mat::scalar(ds));
                }
            }
        }
    }

    fn acc(slot: &mut Option<Mat>, delta: Mat) {
        match slot {
            Some(m) => m.add_assign_scaled(&delta, 1.0),
            None => *slot = Some(delta),
        }
    }
}
