//! AutoRec (Sedhain et al., 2015): autoencoder-based collaborative
//! filtering. The U-AutoRec variant reconstructs each user's interaction
//! row through a bottleneck: `r̂ = W₂ σ(W₁ r + b₁) + b₂`, trained with a
//! masked reconstruction loss over observed entries plus a light negative
//! weight so the decoder does not degenerate to all-ones.

use graphaug_eval::Recommender;
use graphaug_graph::InteractionGraph;
use graphaug_tensor::init::xavier_uniform;
use graphaug_tensor::{Graph, Mat, Optimizer, ParamId, ParamStore};
use std::sync::Arc;

use crate::common::{interaction_rows, BaselineOpts, Trainable};

/// The U-AutoRec model.
pub struct AutoRec {
    opts: BaselineOpts,
    train: InteractionGraph,
    store: ParamStore,
    p_w1: ParamId,
    p_b1: ParamId,
    p_w2: ParamId,
    p_b2: ParamId,
    rng: graphaug_rng::StdRng,
}

impl AutoRec {
    /// Initializes AutoRec with a bottleneck of `2 · embed_dim`.
    pub fn new(opts: BaselineOpts, train: &InteractionGraph) -> Self {
        let mut rng = graphaug_tensor::init::seeded_rng(opts.seed);
        let mut store = ParamStore::new();
        let h = opts.embed_dim * 2;
        let j = train.n_items();
        AutoRec {
            p_w1: store.register(xavier_uniform(j, h, &mut rng)),
            p_b1: store.register(Mat::zeros(1, h)),
            p_w2: store.register(xavier_uniform(h, j, &mut rng)),
            p_b2: store.register(Mat::zeros(1, j)),
            opts,
            train: train.clone(),
            store,
            rng,
        }
    }

    fn reconstruct_row(&self, user: usize) -> Vec<f32> {
        let j = self.train.n_items();
        let w1 = self.store.value(self.p_w1);
        let b1 = self.store.value(self.p_b1);
        let w2 = self.store.value(self.p_w2);
        let b2 = self.store.value(self.p_b2);
        let h = w1.cols();
        let mut hidden = vec![0f32; h];
        for &v in self.train.items_of(user) {
            for (k, hd) in hidden.iter_mut().enumerate() {
                *hd += w1.get(v as usize, k);
            }
        }
        for (k, hd) in hidden.iter_mut().enumerate() {
            *hd = graphaug_tensor::sigmoid(*hd + b1.get(0, k));
        }
        (0..j)
            .map(|v| {
                let mut acc = b2.get(0, v);
                for (k, &x) in hidden.iter().enumerate() {
                    acc += x * w2.get(k, v);
                }
                acc
            })
            .collect()
    }
}

impl Recommender for AutoRec {
    fn name(&self) -> &str {
        "AutoR"
    }

    fn embeddings(&self) -> Option<(&Mat, &Mat)> {
        None
    }

    fn score_items(&self, user: usize) -> Vec<f32> {
        self.reconstruct_row(user)
    }
}

impl Trainable for AutoRec {
    fn fit_with(&mut self, on_epoch: &mut dyn FnMut(usize, &Mat, &Mat)) {
        let n_users = self.train.n_users();
        let batch = 128.min(n_users);
        let empty_u = Mat::zeros(self.train.n_users(), 1);
        let empty_i = Mat::zeros(self.train.n_items(), 1);
        for epoch in 0..self.opts.epochs {
            for _ in 0..self.opts.steps_per_epoch {
                let users: Vec<u32> = (0..batch)
                    .map(|_| self.rng.random_range(0..n_users as u32))
                    .collect();
                let rows = interaction_rows(&self.train, &users);
                // Observed entries weigh 1, unobserved 0.05 (implicit
                // negatives keep the decoder from saturating).
                let mask = Arc::new(rows.map(|x| if x > 0.0 { 1.0 } else { 0.05 }));
                let target = Arc::new(rows.map(|x| -x));
                let mut g = Graph::new();
                let w1 = self.store.node(&mut g, self.p_w1);
                let b1 = self.store.node(&mut g, self.p_b1);
                let w2 = self.store.node(&mut g, self.p_w2);
                let b2 = self.store.node(&mut g, self.p_b2);
                let input = g.constant(rows);
                let z1 = g.matmul(input, w1);
                let z1b = g.add_row_broadcast(z1, b1);
                let hid = g.sigmoid(z1b);
                let z2 = g.matmul(hid, w2);
                let recon = g.add_row_broadcast(z2, b2);
                let diff = g.add_const(recon, Arc::clone(&target));
                let sq = g.square(diff);
                let weighted = g.mul_const(sq, Arc::clone(&mask));
                let loss = g.mean_all(weighted);
                g.backward(loss);
                let pairs = [
                    (self.p_w1, w1),
                    (self.p_b1, b1),
                    (self.p_w2, w2),
                    (self.p_b2, b2),
                ];
                self.store
                    .apply_grads(&g, &pairs, Optimizer::adam(self.opts.learning_rate));
            }
            on_epoch(epoch, &empty_u, &empty_i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphaug_data::{generate, SyntheticConfig};
    use graphaug_eval::evaluate;
    use graphaug_graph::TrainTestSplit;

    #[test]
    fn reconstruction_scores_all_items() {
        let data = generate(&SyntheticConfig::new(30, 25, 300).seed(1));
        let m = AutoRec::new(BaselineOpts::fast_test(), &data);
        let s = m.score_items(3);
        assert_eq!(s.len(), 25);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn training_improves_ranking() {
        let data = generate(&SyntheticConfig::new(80, 120, 900).clusters(4).seed(3));
        let split = TrainTestSplit::per_user(&data, 0.2, 5);
        let mut m = AutoRec::new(BaselineOpts::fast_test().epochs(20), &split.train);
        let before = evaluate(&m, &split, &[5]).recall(5);
        m.fit();
        let after = evaluate(&m, &split, &[5]).recall(5);
        assert!(after > before, "before {before} after {after}");
    }

    #[test]
    fn trained_reconstruction_prefers_observed_items() {
        let data = generate(&SyntheticConfig::new(40, 30, 500).seed(9));
        let mut m = AutoRec::new(BaselineOpts::fast_test().epochs(20), &data);
        m.fit();
        // Mean score of observed items should exceed mean of unobserved.
        let mut obs = (0.0f64, 0usize);
        let mut uno = (0.0f64, 0usize);
        for u in 0..10 {
            let s = m.score_items(u);
            for (v, &sc) in s.iter().enumerate() {
                if data.has_edge(u as u32, v as u32) {
                    obs = (obs.0 + sc as f64, obs.1 + 1);
                } else {
                    uno = (uno.0 + sc as f64, uno.1 + 1);
                }
            }
        }
        assert!(obs.0 / obs.1 as f64 > uno.0 / uno.1 as f64);
    }
}
