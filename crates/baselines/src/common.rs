//! Shared infrastructure for the baseline recommenders.

use std::sync::Arc;

use graphaug_rng::StdRng;

use graphaug_core::GraphAug;
use graphaug_eval::Recommender;
use graphaug_graph::InteractionGraph;
use graphaug_tensor::{Graph, Mat, NodeId};

/// Training hyperparameters shared by all baselines (mirroring the paper's
/// common protocol: Adam, BPR batches, fixed epoch budget).
#[derive(Clone, Debug)]
pub struct BaselineOpts {
    /// Embedding dimension.
    pub embed_dim: usize,
    /// Propagation layers (GNN models).
    pub layers: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Optimization steps per epoch.
    pub steps_per_epoch: usize,
    /// BPR triplets per step.
    pub bpr_batch: usize,
    /// Contrastive batch size (SSL models).
    pub cl_batch: usize,
    /// InfoNCE temperature.
    pub temperature: f32,
    /// SSL loss weight.
    pub ssl_weight: f32,
    /// Weight decay coefficient.
    pub weight_decay: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BaselineOpts {
    fn default() -> Self {
        BaselineOpts {
            embed_dim: 32,
            layers: 2,
            learning_rate: 5e-3,
            epochs: 40,
            steps_per_epoch: 6,
            bpr_batch: 1024,
            cl_batch: 256,
            temperature: 0.5,
            ssl_weight: 0.05,
            weight_decay: 1e-5,
            seed: 2024,
        }
    }
}

impl BaselineOpts {
    /// Fast settings for unit tests.
    pub fn fast_test() -> Self {
        BaselineOpts {
            embed_dim: 16,
            epochs: 8,
            steps_per_epoch: 3,
            bpr_batch: 256,
            cl_batch: 64,
            seed: 7,
            ..Default::default()
        }
    }

    /// Sets the epoch budget.
    pub fn epochs(mut self, e: usize) -> Self {
        self.epochs = e;
        self
    }

    /// Sets the embedding dimension.
    pub fn embed_dim(mut self, d: usize) -> Self {
        self.embed_dim = d;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }
}

/// A uniformly trainable model: every baseline (and GraphAug, via the
/// adapter below) exposes epoch-wise training with an embedding callback so
/// the harness can record convergence curves (Fig. 4).
pub trait Trainable: Recommender {
    /// Trains the model, invoking `on_epoch(epoch, user_emb, item_emb)`
    /// after every epoch.
    fn fit_with(&mut self, on_epoch: &mut dyn FnMut(usize, &Mat, &Mat));

    /// Trains without a callback.
    fn fit(&mut self) {
        self.fit_with(&mut |_, _, _| {});
    }
}

impl Trainable for GraphAug {
    fn fit_with(&mut self, on_epoch: &mut dyn FnMut(usize, &Mat, &Mat)) {
        GraphAug::fit_with(self, |e, u, i| on_epoch(e, u, i));
    }
}

/// Splits a cached `(I+J) × d` node-embedding matrix into user and item
/// blocks.
pub fn split_embeddings(all: &Mat, n_users: usize, n_items: usize) -> (Mat, Mat) {
    let d = all.cols();
    debug_assert_eq!(all.rows(), n_users + n_items);
    let mut u = Mat::zeros(n_users, d);
    let mut i = Mat::zeros(n_items, d);
    for r in 0..n_users {
        u.row_mut(r).copy_from_slice(all.row(r));
    }
    for r in 0..n_items {
        i.row_mut(r).copy_from_slice(all.row(n_users + r));
    }
    (u, i)
}

/// Builds a constant random edge-keep weight vector for SGL-style edge
/// dropout over a directed pattern: kept entries carry `norm/keep_prob`
/// (inverted-dropout scaling), dropped entries are 0. The two directed
/// copies of one undirected edge are dropped together.
pub fn edge_dropout_weights(
    n_undirected: usize,
    dir_to_undir: &[u32],
    norm: &Mat,
    keep_prob: f32,
    rng: &mut StdRng,
) -> Arc<Mat> {
    let keep: Vec<bool> = (0..n_undirected)
        .map(|_| rng.random_range(0.0f32..1.0) < keep_prob)
        .collect();
    let scale = 1.0 / keep_prob.max(1e-6);
    Arc::new(Mat::from_fn(dir_to_undir.len(), 1, |r, _| {
        if keep[dir_to_undir[r] as usize] {
            norm.get(r, 0) * scale
        } else {
            0.0
        }
    }))
}

/// Lloyd's k-means over matrix rows (used by NCL's EM prototype step).
/// Returns `(assignment, centroids)`; empty clusters are re-seeded from the
/// farthest point.
pub fn kmeans(data: &Mat, k: usize, iters: usize, seed: u64) -> (Vec<usize>, Mat) {
    let (n, d) = data.shape();
    assert!(k >= 1 && n >= k, "need at least k rows");
    let mut rng = graphaug_tensor::init::seeded_rng(seed);
    // Initialize centroids from distinct random rows.
    let mut order: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.random_range(i..n);
        order.swap(i, j);
    }
    let mut centroids = Mat::zeros(k, d);
    for (c, &row) in order.iter().enumerate().take(k) {
        centroids.row_mut(c).copy_from_slice(data.row(row));
    }
    let mut assign = vec![0usize; n];
    for _ in 0..iters {
        // Assignment step.
        for (r, a) in assign.iter_mut().enumerate() {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for c in 0..k {
                let dist: f32 = data
                    .row(r)
                    .iter()
                    .zip(centroids.row(c))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if dist < best_d {
                    best_d = dist;
                    best = c;
                }
            }
            *a = best;
        }
        // Update step.
        let mut counts = vec![0usize; k];
        let mut sums = Mat::zeros(k, d);
        for r in 0..n {
            counts[assign[r]] += 1;
            let crow = sums.row_mut(assign[r]);
            for (o, &x) in crow.iter_mut().zip(data.row(r)) {
                *o += x;
            }
        }
        for (c, &count) in counts.iter().enumerate() {
            if count == 0 {
                let j = rng.random_range(0..n);
                centroids.row_mut(c).copy_from_slice(data.row(j));
            } else {
                let inv = 1.0 / count as f32;
                let crow = centroids.row_mut(c);
                for (o, &s) in crow.iter_mut().zip(sums.row(c)) {
                    *o = s * inv;
                }
            }
        }
    }
    (assign, centroids)
}

/// Bipartite interaction matrix of a graph as a dense constant row per user
/// (AutoRec input). Returns `(users × items)` with 1.0 at interactions.
pub fn interaction_rows(train: &InteractionGraph, users: &[u32]) -> Mat {
    let mut m = Mat::zeros(users.len(), train.n_items());
    for (i, &u) in users.iter().enumerate() {
        for &v in train.items_of(u as usize) {
            m.set(i, v as usize, 1.0);
        }
    }
    m
}

/// Softmax across the columns of an `n × k` node, built from primitive ops
/// (`exp(x − logsumexp_row)` broadcast per column slice).
pub fn softmax_cols(g: &mut Graph, x: NodeId, k: usize) -> Vec<NodeId> {
    let lse = g.logsumexp_rows(x);
    (0..k)
        .map(|c| {
            let xc = g.slice_cols(x, c, c + 1);
            let diff = g.sub(xc, lse);
            g.exp(diff)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Uniform training driver for tape-based CF models.
// ---------------------------------------------------------------------------

use graphaug_core::nn::BprBatch;
use graphaug_graph::TripletSampler;
use graphaug_tensor::{Optimizer, ParamId, ParamStore, SpPair};

/// Shared state of every graph-CF baseline: options, training graph,
/// normalized adjacency, parameter store, and cached final embeddings.
pub struct CfCore {
    /// Training options.
    pub opts: BaselineOpts,
    /// The training interactions.
    pub train: InteractionGraph,
    /// Symmetric-normalized bipartite adjacency (no self-loops).
    pub adj: SpPair,
    /// Parameter store (persists Adam state across steps).
    pub store: ParamStore,
    /// Cached user embeddings after the last refresh.
    pub user_emb: Mat,
    /// Cached item embeddings after the last refresh.
    pub item_emb: Mat,
    /// Model RNG.
    pub rng: StdRng,
}

impl CfCore {
    /// Builds the shared state for a training graph.
    pub fn new(opts: BaselineOpts, train: &InteractionGraph) -> Self {
        let adj = SpPair::symmetric(train.normalized_adjacency_plain());
        let rng = graphaug_tensor::init::seeded_rng(opts.seed);
        CfCore {
            user_emb: Mat::zeros(train.n_users(), opts.embed_dim),
            item_emb: Mat::zeros(train.n_items(), opts.embed_dim),
            opts,
            train: train.clone(),
            adj,
            store: ParamStore::new(),
            rng,
        }
    }
}

/// The per-model hooks consumed by [`fit_cf`]: an evaluation encoder and a
/// per-step loss builder. Implementing this plus the
/// `impl_recommender_trainable!` macro gives a model the full
/// [`Recommender`]/[`Trainable`] surface.
pub trait CfModel {
    /// Shared state accessor.
    fn core(&self) -> &CfCore;
    /// Shared state accessor.
    fn core_mut(&mut self) -> &mut CfCore;
    /// Display name.
    fn model_name(&self) -> &'static str;
    /// Builds the deterministic evaluation encoder; returns the
    /// `(I+J) × d'` node-embedding node.
    fn encode_eval(&mut self, g: &mut Graph) -> NodeId;
    /// Builds one training step; returns the scalar loss and the
    /// `(param, node)` pairs to update.
    fn build_step(&mut self, g: &mut Graph, batch: &BprBatch) -> (NodeId, Vec<(ParamId, NodeId)>);
    /// Hook invoked after each epoch (EM steps, re-clustering, …).
    fn on_epoch_end(&mut self, _epoch: usize) {}
}

/// Recomputes and caches the model's final embeddings.
pub fn refresh_cf<M: CfModel + ?Sized>(m: &mut M) {
    let mut g = Graph::new();
    let emb = m.encode_eval(&mut g);
    let all = g.value(emb).clone();
    let c = m.core_mut();
    let (u, i) = split_embeddings(&all, c.train.n_users(), c.train.n_items());
    c.user_emb = u;
    c.item_emb = i;
}

/// The shared epoch/step training loop (Adam on BPR batches), with an
/// embedding callback after every epoch.
pub fn fit_cf<M: CfModel + ?Sized>(m: &mut M, on_epoch: &mut dyn FnMut(usize, &Mat, &Mat)) {
    let train = m.core().train.clone();
    let opts = m.core().opts.clone();
    let mut sampler = TripletSampler::new(&train, opts.seed ^ 0x5a5a_1234);
    for epoch in 0..opts.epochs {
        for _ in 0..opts.steps_per_epoch {
            let (users, pos, neg) = sampler.sample_batch(opts.bpr_batch);
            let batch = BprBatch::from_raw(users, pos, neg, train.n_users());
            let mut g = Graph::new();
            let (loss, pairs) = m.build_step(&mut g, &batch);
            g.backward(loss);
            m.core_mut()
                .store
                .apply_grads(&g, &pairs, Optimizer::adam(opts.learning_rate));
        }
        m.on_epoch_end(epoch);
        refresh_cf(m);
        let c = m.core();
        on_epoch(epoch, &c.user_emb, &c.item_emb);
    }
}

/// Adds the weight-decay term over all parameter nodes to `loss`.
pub fn with_weight_decay(
    g: &mut Graph,
    loss: NodeId,
    pairs: &[(ParamId, NodeId)],
    coeff: f32,
) -> NodeId {
    let nodes: Vec<NodeId> = pairs.iter().map(|&(_, n)| n).collect();
    let wd = graphaug_core::nn::weight_decay(g, &nodes);
    let scaled = g.scale(wd, coeff);
    g.add(loss, scaled)
}

/// Generates `Recommender` + `Trainable` impls for a [`CfModel`] type.
macro_rules! impl_recommender_trainable {
    ($ty:ty) => {
        impl graphaug_eval::Recommender for $ty {
            fn name(&self) -> &str {
                self.model_name()
            }
            fn embeddings(&self) -> Option<(&graphaug_tensor::Mat, &graphaug_tensor::Mat)> {
                let c = self.core();
                Some((&c.user_emb, &c.item_emb))
            }
        }
        impl $crate::common::Trainable for $ty {
            fn fit_with(
                &mut self,
                on_epoch: &mut dyn FnMut(usize, &graphaug_tensor::Mat, &graphaug_tensor::Mat),
            ) {
                $crate::common::fit_cf(self, on_epoch);
            }
        }
    };
}
pub(crate) use impl_recommender_trainable;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_embeddings_partitions_rows() {
        let all = Mat::from_fn(5, 2, |r, c| (r * 2 + c) as f32);
        let (u, i) = split_embeddings(&all, 2, 3);
        assert_eq!(u.shape(), (2, 2));
        assert_eq!(i.shape(), (3, 2));
        assert_eq!(i.get(0, 0), 4.0);
    }

    #[test]
    fn edge_dropout_pairs_directions() {
        let dir_to_undir = vec![0u32, 1, 0, 1];
        let norm = Mat::filled(4, 1, 0.5);
        let mut rng = graphaug_tensor::init::seeded_rng(3);
        let w = edge_dropout_weights(2, &dir_to_undir, &norm, 0.5, &mut rng);
        // Directed copies of the same undirected edge share fate.
        assert_eq!(w.get(0, 0) == 0.0, w.get(2, 0) == 0.0);
        assert_eq!(w.get(1, 0) == 0.0, w.get(3, 0) == 0.0);
    }

    #[test]
    fn edge_dropout_scales_kept_edges() {
        let dir_to_undir = vec![0u32];
        let norm = Mat::filled(1, 1, 0.4);
        let mut rng = graphaug_tensor::init::seeded_rng(1);
        let w = edge_dropout_weights(1, &dir_to_undir, &norm, 1.0, &mut rng);
        assert!((w.get(0, 0) - 0.4).abs() < 1e-6);
    }

    #[test]
    fn kmeans_separates_two_blobs() {
        let data = Mat::from_fn(20, 2, |r, _| if r < 10 { 0.0 } else { 10.0 });
        let (assign, centroids) = kmeans(&data, 2, 10, 5);
        assert_ne!(assign[0], assign[19]);
        assert!(assign[..10].iter().all(|&a| a == assign[0]));
        assert!(assign[10..].iter().all(|&a| a == assign[19]));
        let lo = centroids.get(assign[0], 0);
        let hi = centroids.get(assign[19], 0);
        assert!((lo - 0.0).abs() < 1.0 && (hi - 10.0).abs() < 1.0);
    }

    #[test]
    fn interaction_rows_are_binary() {
        let g = InteractionGraph::new(2, 4, vec![(0, 1), (1, 3)]);
        let m = interaction_rows(&g, &[0, 1]);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 3), 1.0);
        assert_eq!(m.as_slice().iter().sum::<f32>(), 2.0);
    }

    #[test]
    fn softmax_cols_sums_to_one() {
        let mut g = Graph::new();
        let x = g.constant(Mat::from_fn(3, 4, |r, c| (r as f32 - c as f32) * 0.7));
        let cols = softmax_cols(&mut g, x, 4);
        for r in 0..3 {
            let total: f32 = cols.iter().map(|&c| g.value(c).get(r, 0)).sum();
            assert!((total - 1.0).abs() < 1e-5);
        }
    }
}
