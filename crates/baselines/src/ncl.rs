//! NCL (Lin et al., 2022): neighborhood-enriched contrastive learning.
//!
//! Two contrastive signals on top of LightGCN:
//!
//! * **structural neighbors** — each node's ego embedding (layer 0) is
//!   aligned with its even-hop propagated embedding (layer 2), which
//!   captures homogeneous (user–user / item–item) neighbors in a bipartite
//!   graph;
//! * **semantic prototypes** — an EM step (k-means over the cached
//!   embeddings, re-run every epoch) assigns each node a cluster, and the
//!   node is pulled towards its prototype against all other prototypes.

use std::sync::Arc;

use graphaug_core::nn::{bpr_loss, infonce_loss, BprBatch};
use graphaug_graph::{InteractionGraph, TripletSampler};
use graphaug_tensor::init::xavier_uniform;
use graphaug_tensor::{Graph, Mat, NodeId, ParamId};

use crate::common::{
    impl_recommender_trainable, kmeans, refresh_cf, with_weight_decay, BaselineOpts, CfCore,
    CfModel,
};

/// The NCL model with 8 user prototypes and 8 item prototypes.
pub struct Ncl {
    core: CfCore,
    p_emb: ParamId,
    n_clusters: usize,
    /// Structural (ego vs 2-hop) contrast weight. NCL's paper tunes this
    /// orders of magnitude below the BPR term.
    struct_weight: f32,
    /// Prototype contrast weight.
    proto_weight: f32,
    /// `(assignment, centroids)` for users, refreshed every epoch.
    user_protos: Option<(Vec<usize>, Mat)>,
    /// Same for items.
    item_protos: Option<(Vec<usize>, Mat)>,
}

impl Ncl {
    /// Initializes NCL.
    pub fn new(opts: BaselineOpts, train: &InteractionGraph) -> Self {
        let mut core = CfCore::new(opts, train);
        let p_emb = core.store.register(xavier_uniform(
            train.n_nodes(),
            core.opts.embed_dim,
            &mut core.rng,
        ));
        let mut m = Ncl {
            core,
            p_emb,
            n_clusters: 8,
            struct_weight: 1e-3,
            proto_weight: 1e-4,
            user_protos: None,
            item_protos: None,
        };
        refresh_cf(&mut m);
        m
    }

    /// Prototype InfoNCE for a population slice: pulls each sampled row of
    /// `emb` towards its assigned centroid against the other centroids.
    fn proto_loss(
        &self,
        g: &mut Graph,
        emb: NodeId,
        rows: &Arc<Vec<u32>>,
        assign: &[usize],
        row_offset: usize,
        centroids: &Mat,
    ) -> NodeId {
        let k = centroids.rows();
        let batch = g.gather_rows(emb, Arc::clone(rows));
        let nb = g.l2_normalize_rows(batch);
        let cents = g.constant(centroids.clone());
        let nc = g.l2_normalize_rows(cents);
        let sim = g.matmul_nt(nb, nc); // B × k
        let scaled = g.scale(sim, 1.0 / self.core.opts.temperature);
        let lse = g.logsumexp_rows(scaled);
        // Positive logit: one-hot mask × similarity, row-summed.
        let onehot = Arc::new(Mat::from_fn(rows.len(), k, |r, c| {
            let node = rows[r] as usize - row_offset;
            if assign[node] == c {
                1.0
            } else {
                0.0
            }
        }));
        let masked = g.mul_const(scaled, onehot);
        let ones = g.constant(Mat::filled(k, 1, 1.0));
        let pos = g.matmul(masked, ones); // B × 1
        let diff = g.sub(lse, pos);
        g.mean_all(diff)
    }
}

impl CfModel for Ncl {
    fn core(&self) -> &CfCore {
        &self.core
    }
    fn core_mut(&mut self) -> &mut CfCore {
        &mut self.core
    }
    fn model_name(&self) -> &'static str {
        "NCL"
    }
    fn encode_eval(&mut self, g: &mut Graph) -> NodeId {
        let emb = self.core.store.node(g, self.p_emb);
        graphaug_core::nn::lightgcn_propagate(g, &self.core.adj, emb, self.core.opts.layers)
    }
    fn build_step(&mut self, g: &mut Graph, batch: &BprBatch) -> (NodeId, Vec<(ParamId, NodeId)>) {
        let emb = self.core.store.node(g, self.p_emb);
        // Manual propagation so layer-0 and layer-2 are both available.
        let h1 = g.spmm(&self.core.adj, emb);
        let h2 = g.spmm(&self.core.adj, h1);
        let s01 = g.add(emb, h1);
        let s012 = g.add(s01, h2);
        let readout = g.scale(s012, 1.0 / 3.0);
        let loss = bpr_loss(g, readout, batch);

        let n_cl = self.core.opts.cl_batch;
        let mut sampler = TripletSampler::new(&self.core.train, self.core.rng.random());
        let users = Arc::new(sampler.sample_active_users(n_cl));
        let off = self.core.train.n_users();
        let n_items = self.core.train.n_items() as u32;
        let items: Arc<Vec<u32>> = Arc::new(
            (0..n_cl.min(n_items as usize))
                .map(|_| off as u32 + self.core.rng.random_range(0..n_items))
                .collect(),
        );

        // Structural neighbor contrast: ego (layer 0) vs 2-hop (layer 2).
        let tau = self.core.opts.temperature;
        let su = infonce_loss(g, emb, h2, &users, tau);
        let si = infonce_loss(g, emb, h2, &items, tau);
        let structural = g.add(su, si);
        let mut ssl = g.scale(structural, self.struct_weight);

        // Prototype contrast (once the first EM pass has run).
        if let (Some((ua, uc)), Some((ia, ic))) = (&self.user_protos, &self.item_protos) {
            let pu = self.proto_loss(g, readout, &users, ua, 0, uc);
            let pi = self.proto_loss(g, readout, &items, ia, off, ic);
            let p = g.add(pu, pi);
            let pw = g.scale(p, self.proto_weight);
            ssl = g.add(ssl, pw);
        }
        let with_ssl = g.add(loss, ssl);
        let pairs = vec![(self.p_emb, emb)];
        let total = with_weight_decay(g, with_ssl, &pairs, self.core.opts.weight_decay);
        (total, pairs)
    }
    fn on_epoch_end(&mut self, epoch: usize) {
        // EM step: recluster the cached embeddings.
        refresh_cf(self);
        let k_user = self.n_clusters.min(self.core.user_emb.rows());
        let k_item = self.n_clusters.min(self.core.item_emb.rows());
        self.user_protos = Some(kmeans(
            &self.core.user_emb,
            k_user,
            5,
            self.core.opts.seed + epoch as u64,
        ));
        self.item_protos = Some(kmeans(
            &self.core.item_emb,
            k_item,
            5,
            self.core.opts.seed + 31 + epoch as u64,
        ));
    }
}

impl_recommender_trainable!(Ncl);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Trainable;
    use graphaug_data::{generate, SyntheticConfig};
    use graphaug_eval::{evaluate, Recommender};
    use graphaug_graph::TrainTestSplit;

    #[test]
    fn ncl_trains_and_improves() {
        let data = generate(&SyntheticConfig::new(80, 120, 900).clusters(4).seed(2));
        let s = TrainTestSplit::per_user(&data, 0.2, 4);
        let mut m = Ncl::new(BaselineOpts::fast_test().epochs(12), &s.train);
        let before = evaluate(&m, &s, &[5]).recall(5);
        m.fit();
        let after = evaluate(&m, &s, &[5]).recall(5);
        assert!(after > before, "before {before} after {after}");
        assert_eq!(m.name(), "NCL");
    }

    #[test]
    fn prototypes_appear_after_first_epoch() {
        let data = generate(&SyntheticConfig::new(40, 30, 400).seed(3));
        let mut m = Ncl::new(BaselineOpts::fast_test().epochs(2), &data);
        assert!(m.user_protos.is_none());
        m.fit();
        let (assign, cents) = m.user_protos.as_ref().unwrap();
        assert_eq!(assign.len(), 40);
        assert_eq!(cents.rows(), 8);
    }
}
