//! CGI (contrastive graph structure learning with information bottleneck) —
//! the learnable-view baseline in the paper's Table II.
//!
//! CGI learns a free per-edge dropout logit (no MLP — this is its key
//! difference from GraphAug's embedding-conditioned augmentor), draws a
//! concrete/Gumbel sample per step, propagates a LightGCN view over the
//! sampled adjacency, and optimizes BPR + InfoNCE(main, view) + an IB-style
//! sparsity pressure on the keep probabilities (pushing views to discard
//! uninformative edges).

use std::sync::Arc;

use graphaug_core::nn::{
    bpr_loss, infonce_loss, lightgcn_propagate, lightgcn_propagate_ew, BprBatch,
};
use graphaug_core::EdgeIndex;
use graphaug_graph::{InteractionGraph, TripletSampler};
use graphaug_tensor::init::xavier_uniform;
use graphaug_tensor::{Graph, Mat, NodeId, ParamId};

use crate::common::{
    impl_recommender_trainable, refresh_cf, with_weight_decay, BaselineOpts, CfCore, CfModel,
};

/// The CGI model.
pub struct Cgi {
    core: CfCore,
    edge_index: EdgeIndex,
    p_emb: ParamId,
    /// Free per-undirected-edge keep logits.
    p_edge_logits: ParamId,
    /// Concrete relaxation temperature.
    gumbel_temperature: f32,
    /// IB sparsity weight on keep probabilities.
    ib_weight: f32,
}

impl Cgi {
    /// Initializes CGI.
    pub fn new(opts: BaselineOpts, train: &InteractionGraph) -> Self {
        let mut core = CfCore::new(opts, train);
        let edge_index = EdgeIndex::build(train);
        let p_emb = core.store.register(xavier_uniform(
            train.n_nodes(),
            core.opts.embed_dim,
            &mut core.rng,
        ));
        // Initialize logits at +1 (keep-biased) so early training sees most
        // of the graph.
        let p_edge_logits = core
            .store
            .register(Mat::filled(edge_index.n_edges(), 1, 1.0));
        let mut m = Cgi {
            core,
            edge_index,
            p_emb,
            p_edge_logits,
            gumbel_temperature: 0.5,
            ib_weight: 0.05,
        };
        refresh_cf(&mut m);
        m
    }

    /// Trained keep probability per training edge (diagnostic parity with
    /// GraphAug's case study).
    pub fn edge_keep_probabilities(&self) -> Vec<f32> {
        self.core
            .store
            .value(self.p_edge_logits)
            .as_slice()
            .iter()
            .map(|&l| graphaug_tensor::sigmoid(l))
            .collect()
    }

    fn sampled_view(&mut self, g: &mut Graph, logits: NodeId, emb: NodeId) -> NodeId {
        let e = self.edge_index.n_edges();
        let rng = &mut self.core.rng;
        let gumbel = Arc::new(Mat::from_fn(e, 1, |_, _| rng.logistic_f32()));
        let noisy = g.add_const(logits, gumbel);
        let sharp = g.scale(noisy, 1.0 / self.gumbel_temperature);
        let soft = g.sigmoid(sharp);
        let directed = g.gather_rows(soft, Arc::clone(&self.edge_index.dir_to_undir));
        let weights = g.mul_const(directed, Arc::clone(&self.edge_index.norm));
        lightgcn_propagate_ew(
            g,
            &self.edge_index.pattern,
            weights,
            emb,
            self.core.opts.layers,
        )
    }
}

impl CfModel for Cgi {
    fn core(&self) -> &CfCore {
        &self.core
    }
    fn core_mut(&mut self) -> &mut CfCore {
        &mut self.core
    }
    fn model_name(&self) -> &'static str {
        "CGI"
    }
    fn encode_eval(&mut self, g: &mut Graph) -> NodeId {
        let emb = self.core.store.node(g, self.p_emb);
        lightgcn_propagate(g, &self.core.adj, emb, self.core.opts.layers)
    }
    fn build_step(&mut self, g: &mut Graph, batch: &BprBatch) -> (NodeId, Vec<(ParamId, NodeId)>) {
        let emb = self.core.store.node(g, self.p_emb);
        let logits = self.core.store.node(g, self.p_edge_logits);
        let main = lightgcn_propagate(g, &self.core.adj, emb, self.core.opts.layers);
        let loss = bpr_loss(g, main, batch);
        let view = self.sampled_view(g, logits, emb);
        let n_cl = self.core.opts.cl_batch;
        let mut sampler = TripletSampler::new(&self.core.train, self.core.rng.random());
        let users = Arc::new(sampler.sample_active_users(n_cl));
        let off = self.core.train.n_users() as u32;
        let n_items = self.core.train.n_items() as u32;
        let items: Arc<Vec<u32>> = Arc::new(
            (0..n_cl.min(n_items as usize))
                .map(|_| off + self.core.rng.random_range(0..n_items))
                .collect(),
        );
        let cu = infonce_loss(g, main, view, &users, self.core.opts.temperature);
        let ci = infonce_loss(g, main, view, &items, self.core.opts.temperature);
        let cl = g.add(cu, ci);
        let clw = g.scale(cl, self.core.opts.ssl_weight);
        let with_cl = g.add(loss, clw);
        // IB sparsity pressure: E[keep] should not stay at 1.
        let probs = g.sigmoid(logits);
        let ib = g.mean_all(probs);
        let ibw = g.scale(ib, self.ib_weight);
        let with_ib = g.add(with_cl, ibw);
        let pairs = vec![(self.p_emb, emb), (self.p_edge_logits, logits)];
        let total = with_weight_decay(g, with_ib, &pairs, self.core.opts.weight_decay);
        (total, pairs)
    }
}

impl_recommender_trainable!(Cgi);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Trainable;
    use graphaug_data::{generate, SyntheticConfig};
    use graphaug_eval::{evaluate, Recommender};
    use graphaug_graph::TrainTestSplit;

    #[test]
    fn cgi_trains_and_improves() {
        let data = generate(&SyntheticConfig::new(80, 120, 900).clusters(4).seed(2));
        let s = TrainTestSplit::per_user(&data, 0.2, 4);
        let mut m = Cgi::new(BaselineOpts::fast_test().epochs(12), &s.train);
        let before = evaluate(&m, &s, &[5]).recall(5);
        m.fit();
        let after = evaluate(&m, &s, &[5]).recall(5);
        assert!(after > before, "before {before} after {after}");
        assert_eq!(m.name(), "CGI");
    }

    #[test]
    fn ib_pressure_moves_keep_probabilities_below_one() {
        let data = generate(&SyntheticConfig::new(40, 30, 400).seed(3));
        let mut m = Cgi::new(BaselineOpts::fast_test().epochs(10), &data);
        m.fit();
        let probs = m.edge_keep_probabilities();
        let mean: f32 = probs.iter().sum::<f32>() / probs.len() as f32;
        // Initial sigmoid(1.0) ≈ 0.731; the IB term pushes it down.
        assert!(mean < 0.731, "mean keep prob {mean}");
    }
}
