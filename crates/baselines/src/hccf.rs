//! HCCF (Xia et al., 2022): hypergraph contrastive collaborative filtering.
//!
//! Local embeddings come from LightGCN propagation; global embeddings come
//! from a learnable low-rank hypergraph: a `(d × k)` hyperedge projection
//! routes every node through `k` hyperedges (`G = (H Wₕ) Wₕᵀ H`-style
//! bottleneck). Local and global views are aligned with InfoNCE over users
//! and items, on top of BPR.

use std::sync::Arc;

use graphaug_core::nn::{bpr_loss, infonce_loss, lightgcn_propagate, BprBatch};
use graphaug_graph::{InteractionGraph, TripletSampler};
use graphaug_tensor::init::xavier_uniform;
use graphaug_tensor::{Graph, NodeId, ParamId};

use crate::common::{
    impl_recommender_trainable, refresh_cf, with_weight_decay, BaselineOpts, CfCore, CfModel,
};

/// The HCCF model with `k = 16` hyperedges.
pub struct Hccf {
    core: CfCore,
    p_emb: ParamId,
    p_hyper: ParamId,
    n_hyperedges: usize,
}

impl Hccf {
    /// Initializes HCCF.
    pub fn new(opts: BaselineOpts, train: &InteractionGraph) -> Self {
        let mut core = CfCore::new(opts, train);
        let d = core.opts.embed_dim;
        let k = 16;
        let p_emb = core
            .store
            .register(xavier_uniform(train.n_nodes(), d, &mut core.rng));
        let p_hyper = core.store.register(xavier_uniform(d, k, &mut core.rng));
        let mut m = Hccf {
            core,
            p_emb,
            p_hyper,
            n_hyperedges: k,
        };
        refresh_cf(&mut m);
        m
    }

    /// Global hypergraph pass: node→hyperedge→node through the learnable
    /// `(d × k)` incidence projection, with a LeakyReLU on the hyperedge
    /// activations.
    /// Number of hyperedges in the learnable incidence projection.
    pub fn n_hyperedges(&self) -> usize {
        self.n_hyperedges
    }

    fn hyper_global(&self, g: &mut Graph, h: NodeId, hyper: NodeId) -> NodeId {
        let assign = g.matmul(h, hyper); // n × k
        let act = g.leaky_relu(assign, 0.5);
        g.matmul_nt(act, hyper) // n × d (W_hᵀ back-projection)
    }
}

impl CfModel for Hccf {
    fn core(&self) -> &CfCore {
        &self.core
    }
    fn core_mut(&mut self) -> &mut CfCore {
        &mut self.core
    }
    fn model_name(&self) -> &'static str {
        "HCCF"
    }
    fn encode_eval(&mut self, g: &mut Graph) -> NodeId {
        let emb = self.core.store.node(g, self.p_emb);
        lightgcn_propagate(g, &self.core.adj, emb, self.core.opts.layers)
    }
    fn build_step(&mut self, g: &mut Graph, batch: &BprBatch) -> (NodeId, Vec<(ParamId, NodeId)>) {
        let emb = self.core.store.node(g, self.p_emb);
        let hyper = self.core.store.node(g, self.p_hyper);
        let local = lightgcn_propagate(g, &self.core.adj, emb, self.core.opts.layers);
        let global = self.hyper_global(g, emb, hyper);
        let loss = bpr_loss(g, local, batch);
        // Local–global alignment (users and items).
        let n_cl = self.core.opts.cl_batch;
        let mut sampler = TripletSampler::new(&self.core.train, self.core.rng.random());
        let users = Arc::new(sampler.sample_active_users(n_cl));
        let off = self.core.train.n_users() as u32;
        let n_items = self.core.train.n_items() as u32;
        let items: Arc<Vec<u32>> = Arc::new(
            (0..n_cl.min(n_items as usize))
                .map(|_| off + self.core.rng.random_range(0..n_items))
                .collect(),
        );
        let cu = infonce_loss(g, local, global, &users, self.core.opts.temperature);
        let ci = infonce_loss(g, local, global, &items, self.core.opts.temperature);
        let c = g.add(cu, ci);
        let cw = g.scale(c, self.core.opts.ssl_weight);
        let with_cl = g.add(loss, cw);
        let pairs = vec![(self.p_emb, emb), (self.p_hyper, hyper)];
        let total = with_weight_decay(g, with_cl, &pairs, self.core.opts.weight_decay);
        (total, pairs)
    }
}

impl_recommender_trainable!(Hccf);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Trainable;
    use graphaug_data::{generate, SyntheticConfig};
    use graphaug_eval::{evaluate, Recommender};
    use graphaug_graph::TrainTestSplit;

    #[test]
    fn hccf_trains_and_improves() {
        let data = generate(&SyntheticConfig::new(80, 120, 900).clusters(4).seed(2));
        let s = TrainTestSplit::per_user(&data, 0.2, 4);
        let mut m = Hccf::new(BaselineOpts::fast_test().epochs(45), &s.train);
        let before = evaluate(&m, &s, &[5]).recall(5);
        m.fit();
        let after = evaluate(&m, &s, &[5]).recall(5);
        assert!(after > before, "before {before} after {after}");
        assert_eq!(m.name(), "HCCF");
    }

    #[test]
    fn hyper_projection_has_bottleneck_rank() {
        let data = generate(&SyntheticConfig::new(30, 25, 300).seed(1));
        let m = Hccf::new(BaselineOpts::fast_test(), &data);
        assert_eq!(m.n_hyperedges(), 16);
        // Global pass output shape matches the embedding table.
        let mut g = Graph::new();
        let emb = m.core.store.node(&mut g, m.p_emb);
        let hyper = m.core.store.node(&mut g, m.p_hyper);
        let global = m.hyper_global(&mut g, emb, hyper);
        assert_eq!(g.value(global).shape(), (55, 16));
    }
}
