//! NCF (He et al., 2017): neural collaborative filtering combining a GMF
//! branch (element-wise product of user/item embeddings) with an MLP branch
//! over the concatenated embeddings, fused by a linear output head. Trained
//! with BPR over the fused scores.

use std::sync::Arc;

use graphaug_eval::Recommender;
use graphaug_graph::{InteractionGraph, TripletSampler};
use graphaug_tensor::init::xavier_uniform;
use graphaug_tensor::{Graph, Mat, NodeId, Optimizer, ParamId, ParamStore};

use crate::common::{BaselineOpts, Trainable};

/// The NCF model. Not a dot-product scorer: [`Recommender::score_items`] runs
/// the fused GMF+MLP head directly.
pub struct Ncf {
    opts: BaselineOpts,
    train: InteractionGraph,
    store: ParamStore,
    p_gmf: ParamId,
    p_mlp_emb: ParamId,
    p_w1: ParamId,
    p_b1: ParamId,
    p_w2: ParamId,
    p_b2: ParamId,
    p_out: ParamId,
}

impl Ncf {
    /// Initializes NCF for the training graph.
    pub fn new(opts: BaselineOpts, train: &InteractionGraph) -> Self {
        let d = opts.embed_dim;
        let n = train.n_nodes();
        let mut rng = graphaug_tensor::init::seeded_rng(opts.seed);
        let mut store = ParamStore::new();
        let h = d;
        let h2 = (d / 2).max(2);
        Ncf {
            p_gmf: store.register(xavier_uniform(n, d, &mut rng)),
            p_mlp_emb: store.register(xavier_uniform(n, d, &mut rng)),
            p_w1: store.register(xavier_uniform(2 * d, h, &mut rng)),
            p_b1: store.register(Mat::zeros(1, h)),
            p_w2: store.register(xavier_uniform(h, h2, &mut rng)),
            p_b2: store.register(Mat::zeros(1, h2)),
            p_out: store.register(xavier_uniform(d + h2, 1, &mut rng)),
            opts,
            train: train.clone(),
            store,
        }
    }

    /// Builds the fused score node for `(user, item)` index vectors.
    #[allow(clippy::too_many_arguments)]
    fn score_node(
        &self,
        g: &mut Graph,
        gmf: NodeId,
        mlp: NodeId,
        w1: NodeId,
        b1: NodeId,
        w2: NodeId,
        b2: NodeId,
        out: NodeId,
        users: &Arc<Vec<u32>>,
        items: &Arc<Vec<u32>>,
    ) -> NodeId {
        let gu = g.gather_rows(gmf, Arc::clone(users));
        let gi = g.gather_rows(gmf, Arc::clone(items));
        let gmf_feat = g.mul(gu, gi);
        let mu = g.gather_rows(mlp, Arc::clone(users));
        let mi = g.gather_rows(mlp, Arc::clone(items));
        let cat = g.concat_cols(mu, mi);
        let z1 = g.matmul(cat, w1);
        let z1b = g.add_row_broadcast(z1, b1);
        let a1 = g.leaky_relu(z1b, 0.5);
        let z2 = g.matmul(a1, w2);
        let z2b = g.add_row_broadcast(z2, b2);
        let a2 = g.leaky_relu(z2b, 0.5);
        let fused = g.concat_cols(gmf_feat, a2);
        g.matmul(fused, out)
    }
}

impl Recommender for Ncf {
    fn name(&self) -> &str {
        "NCF"
    }

    fn embeddings(&self) -> Option<(&Mat, &Mat)> {
        None
    }

    fn score_items(&self, user: usize) -> Vec<f32> {
        // Inference outside the tape: plain Mat arithmetic per item block.
        let n_users = self.train.n_users();
        let n_items = self.train.n_items();
        let d = self.opts.embed_dim;
        let gmf = self.store.value(self.p_gmf);
        let mlp = self.store.value(self.p_mlp_emb);
        let w1 = self.store.value(self.p_w1);
        let b1 = self.store.value(self.p_b1);
        let w2 = self.store.value(self.p_w2);
        let b2 = self.store.value(self.p_b2);
        let out = self.store.value(self.p_out);
        let h = w1.cols();
        let h2 = w2.cols();
        let gu = gmf.row(user);
        let mu = mlp.row(user);
        let leaky = |x: f32| if x > 0.0 { x } else { 0.5 * x };
        (0..n_items)
            .map(|v| {
                let node = n_users + v;
                let gi = gmf.row(node);
                let mi = mlp.row(node);
                // MLP branch.
                let mut a1 = vec![0f32; h];
                for (j, a) in a1.iter_mut().enumerate() {
                    let mut acc = b1.get(0, j);
                    for k in 0..d {
                        acc += mu[k] * w1.get(k, j) + mi[k] * w1.get(d + k, j);
                    }
                    *a = leaky(acc);
                }
                let mut a2 = vec![0f32; h2];
                for (j, a) in a2.iter_mut().enumerate() {
                    let mut acc = b2.get(0, j);
                    for (k, &x) in a1.iter().enumerate() {
                        acc += x * w2.get(k, j);
                    }
                    *a = leaky(acc);
                }
                // Fused head: first d slots are GMF, rest MLP.
                let mut s = 0f32;
                for k in 0..d {
                    s += gu[k] * gi[k] * out.get(k, 0);
                }
                for (k, &x) in a2.iter().enumerate() {
                    s += x * out.get(d + k, 0);
                }
                s
            })
            .collect()
    }
}

impl Trainable for Ncf {
    fn fit_with(&mut self, on_epoch: &mut dyn FnMut(usize, &Mat, &Mat)) {
        let train = self.train.clone();
        let mut sampler = TripletSampler::new(&train, self.opts.seed ^ 0x6e6366);
        let empty_u = Mat::zeros(self.train.n_users(), 1);
        let empty_i = Mat::zeros(self.train.n_items(), 1);
        for epoch in 0..self.opts.epochs {
            for _ in 0..self.opts.steps_per_epoch {
                let (users, pos, neg) = sampler.sample_batch(self.opts.bpr_batch);
                let off = self.train.n_users() as u32;
                let users = Arc::new(users);
                let pos = Arc::new(pos.into_iter().map(|v| v + off).collect::<Vec<_>>());
                let neg = Arc::new(neg.into_iter().map(|v| v + off).collect::<Vec<_>>());
                let mut g = Graph::new();
                let gmf = self.store.node(&mut g, self.p_gmf);
                let mlp = self.store.node(&mut g, self.p_mlp_emb);
                let w1 = self.store.node(&mut g, self.p_w1);
                let b1 = self.store.node(&mut g, self.p_b1);
                let w2 = self.store.node(&mut g, self.p_w2);
                let b2 = self.store.node(&mut g, self.p_b2);
                let out = self.store.node(&mut g, self.p_out);
                let s_pos = self.score_node(&mut g, gmf, mlp, w1, b1, w2, b2, out, &users, &pos);
                let s_neg = self.score_node(&mut g, gmf, mlp, w1, b1, w2, b2, out, &users, &neg);
                let margin = g.sub(s_neg, s_pos);
                let sp = g.softplus(margin);
                let loss = g.mean_all(sp);
                g.backward(loss);
                let pairs = [
                    (self.p_gmf, gmf),
                    (self.p_mlp_emb, mlp),
                    (self.p_w1, w1),
                    (self.p_b1, b1),
                    (self.p_w2, w2),
                    (self.p_b2, b2),
                    (self.p_out, out),
                ];
                self.store
                    .apply_grads(&g, &pairs, Optimizer::adam(self.opts.learning_rate));
            }
            on_epoch(epoch, &empty_u, &empty_i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphaug_data::{generate, SyntheticConfig};
    use graphaug_eval::evaluate;
    use graphaug_graph::TrainTestSplit;

    #[test]
    fn scores_cover_all_items() {
        let data = generate(&SyntheticConfig::new(30, 25, 300).seed(1));
        let m = Ncf::new(BaselineOpts::fast_test(), &data);
        let s = m.score_items(0);
        assert_eq!(s.len(), 25);
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn training_improves_ranking() {
        let data = generate(&SyntheticConfig::new(80, 120, 900).clusters(4).seed(3));
        let split = TrainTestSplit::per_user(&data, 0.2, 5);
        let mut m = Ncf::new(BaselineOpts::fast_test().epochs(15), &split.train);
        let before = evaluate(&m, &split, &[5]).recall(5);
        m.fit();
        let after = evaluate(&m, &split, &[5]).recall(5);
        assert!(after > before, "before {before} after {after}");
    }
}
