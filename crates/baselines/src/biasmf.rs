//! BiasMF (Koren et al., 2009): matrix factorization with user/item biases,
//! trained with BPR.
//!
//! Scoring is `u·v + b_u + b_v`. The biases are folded into the embedding
//! matrix as two extra columns (`[e, b, 1]` for users, `[e, 1, b]` for
//! items) so the model stays a pure dot-product scorer.

use std::sync::Arc;

use graphaug_core::nn::{bpr_loss, BprBatch};
use graphaug_graph::InteractionGraph;
use graphaug_tensor::init::xavier_uniform;
use graphaug_tensor::{Graph, Mat, NodeId, ParamId};

use crate::common::{
    impl_recommender_trainable, refresh_cf, with_weight_decay, BaselineOpts, CfCore, CfModel,
};

/// The BiasMF model.
pub struct BiasMf {
    core: CfCore,
    p_emb: ParamId,
    p_bias: ParamId,
    /// Constant column masks selecting the user/item blocks.
    user_mask: Arc<Mat>,
    item_mask: Arc<Mat>,
}

impl BiasMf {
    /// Initializes BiasMF for the training graph.
    pub fn new(opts: BaselineOpts, train: &InteractionGraph) -> Self {
        let mut core = CfCore::new(opts, train);
        let n = train.n_nodes();
        let d = core.opts.embed_dim;
        let p_emb = core.store.register(xavier_uniform(n, d, &mut core.rng));
        let p_bias = core.store.register(Mat::zeros(n, 1));
        let nu = train.n_users();
        let user_mask = Arc::new(Mat::from_fn(n, 1, |r, _| if r < nu { 1.0 } else { 0.0 }));
        let item_mask = Arc::new(Mat::from_fn(n, 1, |r, _| if r >= nu { 1.0 } else { 0.0 }));
        let mut m = BiasMf {
            core,
            p_emb,
            p_bias,
            user_mask,
            item_mask,
        };
        refresh_cf(&mut m);
        m
    }

    /// Builds the biased embedding `[e | colA | colB]` where the dot product
    /// of a user row and an item row equals `e·e + b_u + b_v`.
    fn biased_embedding(&self, g: &mut Graph, emb: NodeId, bias: NodeId) -> NodeId {
        // colA: users carry b_u, items carry 1.
        let bu = g.mul_const(bias, Arc::clone(&self.user_mask));
        let col_a = g.add_const(bu, Arc::clone(&self.item_mask));
        // colB: users carry 1, items carry b_v.
        let bv = g.mul_const(bias, Arc::clone(&self.item_mask));
        let col_b = g.add_const(bv, Arc::clone(&self.user_mask));
        let with_a = g.concat_cols(emb, col_a);
        g.concat_cols(with_a, col_b)
    }
}

impl CfModel for BiasMf {
    fn core(&self) -> &CfCore {
        &self.core
    }
    fn core_mut(&mut self) -> &mut CfCore {
        &mut self.core
    }
    fn model_name(&self) -> &'static str {
        "BiasMF"
    }
    fn encode_eval(&mut self, g: &mut Graph) -> NodeId {
        let emb = self.core.store.node(g, self.p_emb);
        let bias = self.core.store.node(g, self.p_bias);
        self.biased_embedding(g, emb, bias)
    }
    fn build_step(&mut self, g: &mut Graph, batch: &BprBatch) -> (NodeId, Vec<(ParamId, NodeId)>) {
        let emb = self.core.store.node(g, self.p_emb);
        let bias = self.core.store.node(g, self.p_bias);
        let full = self.biased_embedding(g, emb, bias);
        let loss = bpr_loss(g, full, batch);
        let pairs = vec![(self.p_emb, emb), (self.p_bias, bias)];
        let total = with_weight_decay(g, loss, &pairs, self.core.opts.weight_decay);
        (total, pairs)
    }
}

impl_recommender_trainable!(BiasMf);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Trainable;
    use graphaug_data::{generate, SyntheticConfig};
    use graphaug_eval::{evaluate, Recommender};
    use graphaug_graph::TrainTestSplit;

    #[test]
    fn bias_columns_encode_score_correctly() {
        let train = InteractionGraph::new(2, 2, vec![(0, 0), (1, 1)]);
        let mut m = BiasMf::new(BaselineOpts::fast_test(), &train);
        // Set known biases: user0 = 0.3, item1(node 3) = -0.2.
        m.core.store.value_mut(m.p_bias).set(0, 0, 0.3);
        m.core.store.value_mut(m.p_bias).set(3, 0, -0.2);
        refresh_cf(&mut m);
        let (u, i) = m.embeddings().unwrap();
        let d = m.core.opts.embed_dim;
        // dot(u0, item1) must include 0.3 - 0.2 on top of the latent part.
        let latent: f32 = (0..d).map(|c| u.get(0, c) * i.get(1, c)).sum();
        let full: f32 = (0..d + 2).map(|c| u.get(0, c) * i.get(1, c)).sum();
        assert!((full - latent - 0.1).abs() < 1e-5);
    }

    #[test]
    fn training_improves_ranking() {
        let data = generate(&SyntheticConfig::new(80, 120, 900).clusters(4).seed(2));
        let split = TrainTestSplit::per_user(&data, 0.2, 4);
        let mut m = BiasMf::new(BaselineOpts::fast_test().epochs(15), &split.train);
        let before = evaluate(&m, &split, &[5]).recall(5);
        m.fit();
        let after = evaluate(&m, &split, &[5]).recall(5);
        assert!(after > before, "before {before} after {after}");
    }
}
