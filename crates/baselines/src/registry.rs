//! Name-based model construction for the experiment harness.

use graphaug_graph::InteractionGraph;

use crate::common::{BaselineOpts, Trainable};
use crate::{AutoRec, BiasMf, Cgi, DisenCf, EdgeClCf, GnnCf, Hccf, Mhcn, Ncf, Ncl, SlRec, Stgcn};

/// All baseline names in the paper's Table II row order.
pub fn model_names() -> Vec<&'static str> {
    vec![
        "BiasMF", "NCF", "AutoR", "GCMC", "PinSage", "NGCF", "LightGCN", "GCCF", "DisenGCN",
        "DGCF", "MHCN", "STGCN", "SLRec", "SGL", "DGCL", "HCCF", "CGI", "NCL",
    ]
}

/// Builds a baseline by its paper name. Panics on an unknown name — the
/// valid set is [`model_names`].
pub fn build_model(name: &str, opts: BaselineOpts, train: &InteractionGraph) -> Box<dyn Trainable> {
    match name {
        "BiasMF" => Box::new(BiasMf::new(opts, train)),
        "NCF" => Box::new(Ncf::new(opts, train)),
        "AutoR" => Box::new(AutoRec::new(opts, train)),
        "GCMC" => Box::new(GnnCf::gcmc(opts, train)),
        "PinSage" => Box::new(GnnCf::pinsage(opts, train)),
        "NGCF" => Box::new(GnnCf::ngcf(opts, train)),
        "LightGCN" => Box::new(GnnCf::lightgcn(opts, train)),
        "GCCF" => Box::new(GnnCf::gccf(opts, train)),
        "DisenGCN" => Box::new(DisenCf::disengcn(opts, train)),
        "DGCF" => Box::new(DisenCf::dgcf(opts, train)),
        "MHCN" => Box::new(Mhcn::new(opts, train)),
        "STGCN" => Box::new(Stgcn::new(opts, train)),
        "SLRec" => Box::new(SlRec::new(opts, train)),
        "SGL" => Box::new(EdgeClCf::sgl(opts, train)),
        "DGCL" => Box::new(EdgeClCf::dgcl(opts, train)),
        "HCCF" => Box::new(Hccf::new(opts, train)),
        "CGI" => Box::new(Cgi::new(opts, train)),
        "NCL" => Box::new(Ncl::new(opts, train)),
        other => panic!(
            "unknown baseline {other:?}; valid names: {:?}",
            model_names()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphaug_data::{generate, SyntheticConfig};

    #[test]
    fn registry_builds_every_model() {
        let train = generate(&SyntheticConfig::new(30, 25, 300).seed(1));
        for name in model_names() {
            let m = build_model(name, BaselineOpts::fast_test(), &train);
            assert_eq!(m.name(), name, "registry name mismatch");
            let s = m.score_items(0);
            assert_eq!(s.len(), 25, "{name} must score all items");
        }
    }

    #[test]
    #[should_panic(expected = "unknown baseline")]
    fn registry_rejects_unknown_names() {
        let train = generate(&SyntheticConfig::new(10, 10, 40).seed(1));
        build_model("NotAModel", BaselineOpts::fast_test(), &train);
    }
}
