//! Disentangled graph CF baselines: DisenGCN (Ma et al., 2019) and DGCF
//! (Wang et al., 2020).
//!
//! Both split the embedding into `K` latent-factor chunks and learn
//! *per-factor* edge weights by routing: the affinity of an edge's endpoint
//! chunks is softmax-normalized across factors, and each factor propagates
//! its chunk over its own weighted adjacency. DGCF refines the routing with
//! a second iteration computed from the propagated chunks (its iterative
//! intent-aware update); DisenGCN uses a single routing pass.

use std::sync::Arc;

use graphaug_core::nn::{bpr_loss, BprBatch};
use graphaug_core::EdgeIndex;
use graphaug_graph::InteractionGraph;
use graphaug_tensor::init::xavier_uniform;
use graphaug_tensor::{Graph, NodeId, ParamId};

use crate::common::{
    impl_recommender_trainable, refresh_cf, softmax_cols, with_weight_decay, BaselineOpts, CfCore,
    CfModel,
};

/// Routing depth selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DisenKind {
    /// Single routing pass (DisenGCN).
    DisenGcn,
    /// Two routing iterations (DGCF).
    Dgcf,
}

/// A disentangled graph CF model with `K = 4` latent factors.
pub struct DisenCf {
    core: CfCore,
    kind: DisenKind,
    edge_index: EdgeIndex,
    p_emb: ParamId,
    n_factors: usize,
}

impl DisenCf {
    /// Initializes the chosen variant.
    pub fn new(kind: DisenKind, opts: BaselineOpts, train: &InteractionGraph) -> Self {
        assert!(
            opts.embed_dim.is_multiple_of(4),
            "embed_dim must be divisible by 4 factors"
        );
        let mut core = CfCore::new(opts, train);
        let p_emb = core.store.register(xavier_uniform(
            train.n_nodes(),
            core.opts.embed_dim,
            &mut core.rng,
        ));
        let mut m = DisenCf {
            edge_index: EdgeIndex::build(train),
            core,
            kind,
            p_emb,
            n_factors: 4,
        };
        refresh_cf(&mut m);
        m
    }

    /// DisenGCN constructor.
    pub fn disengcn(opts: BaselineOpts, train: &InteractionGraph) -> Self {
        Self::new(DisenKind::DisenGcn, opts, train)
    }

    /// DGCF constructor.
    pub fn dgcf(opts: BaselineOpts, train: &InteractionGraph) -> Self {
        Self::new(DisenKind::Dgcf, opts, train)
    }

    /// Computes per-factor routing weights (each `2E × 1`, normalization
    /// applied) from the given chunk embeddings.
    fn routing_weights(&self, g: &mut Graph, chunks: &[NodeId]) -> Vec<NodeId> {
        let idx = &self.edge_index;
        let mut scores: Option<NodeId> = None;
        for &chunk in chunks {
            let normed = g.l2_normalize_rows(chunk);
            let hu = g.gather_rows(normed, Arc::clone(&idx.edge_users));
            let hv = g.gather_rows(normed, Arc::clone(&idx.edge_items));
            let s = g.rowwise_dot(hu, hv);
            scores = Some(match scores {
                Some(prev) => g.concat_cols(prev, s),
                None => s,
            });
        }
        let stacked = scores.expect("at least one factor");
        let factor_weights = softmax_cols(g, stacked, self.n_factors);
        factor_weights
            .into_iter()
            .map(|w| {
                let directed = g.gather_rows(w, Arc::clone(&idx.dir_to_undir));
                g.mul_const(directed, Arc::clone(&idx.norm))
            })
            .collect()
    }

    fn encode(&self, g: &mut Graph, emb: NodeId) -> NodeId {
        let d = self.core.opts.embed_dim;
        let dk = d / self.n_factors;
        let chunks: Vec<NodeId> = (0..self.n_factors)
            .map(|k| g.slice_cols(emb, k * dk, (k + 1) * dk))
            .collect();
        let routing_iters = match self.kind {
            DisenKind::DisenGcn => 1,
            DisenKind::Dgcf => 2,
        };
        let mut current = chunks.clone();
        for _ in 0..routing_iters {
            let weights = self.routing_weights(g, &current);
            current = chunks
                .iter()
                .zip(&weights)
                .map(|(&chunk, &w)| {
                    let mut z = chunk;
                    let mut acc = chunk;
                    for _ in 0..self.core.opts.layers {
                        z = g.spmm_ew(Arc::clone(&self.edge_index.pattern), w, z);
                        acc = g.add(acc, z);
                    }
                    g.scale(acc, 1.0 / (self.core.opts.layers as f32 + 1.0))
                })
                .collect();
        }
        let mut out = current[0];
        for &c in &current[1..] {
            out = g.concat_cols(out, c);
        }
        out
    }
}

impl CfModel for DisenCf {
    fn core(&self) -> &CfCore {
        &self.core
    }
    fn core_mut(&mut self) -> &mut CfCore {
        &mut self.core
    }
    fn model_name(&self) -> &'static str {
        match self.kind {
            DisenKind::DisenGcn => "DisenGCN",
            DisenKind::Dgcf => "DGCF",
        }
    }
    fn encode_eval(&mut self, g: &mut Graph) -> NodeId {
        let emb = self.core.store.node(g, self.p_emb);
        self.encode(g, emb)
    }
    fn build_step(&mut self, g: &mut Graph, batch: &BprBatch) -> (NodeId, Vec<(ParamId, NodeId)>) {
        let emb = self.core.store.node(g, self.p_emb);
        let h = self.encode(g, emb);
        let loss = bpr_loss(g, h, batch);
        let pairs = vec![(self.p_emb, emb)];
        let total = with_weight_decay(g, loss, &pairs, self.core.opts.weight_decay);
        (total, pairs)
    }
}

impl_recommender_trainable!(DisenCf);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Trainable;
    use graphaug_data::{generate, SyntheticConfig};
    use graphaug_eval::{evaluate, Recommender};
    use graphaug_graph::TrainTestSplit;

    fn split() -> TrainTestSplit {
        let data = generate(&SyntheticConfig::new(80, 120, 900).clusters(4).seed(2));
        TrainTestSplit::per_user(&data, 0.2, 4)
    }

    #[test]
    fn both_variants_produce_finite_embeddings() {
        let s = split();
        for kind in [DisenKind::DisenGcn, DisenKind::Dgcf] {
            let m = DisenCf::new(kind, BaselineOpts::fast_test(), &s.train);
            let (u, i) = m.embeddings().unwrap();
            assert_eq!(u.cols(), 16);
            assert!(u.all_finite() && i.all_finite());
        }
    }

    #[test]
    fn dgcf_training_improves_ranking() {
        let s = split();
        let mut m = DisenCf::dgcf(BaselineOpts::fast_test().epochs(12), &s.train);
        let before = evaluate(&m, &s, &[5]).recall(5);
        m.fit();
        let after = evaluate(&m, &s, &[5]).recall(5);
        assert!(after > before, "before {before} after {after}");
    }

    #[test]
    fn names_are_paper_labels() {
        let s = split();
        assert_eq!(
            DisenCf::disengcn(BaselineOpts::fast_test(), &s.train).name(),
            "DisenGCN"
        );
        assert_eq!(
            DisenCf::dgcf(BaselineOpts::fast_test(), &s.train).name(),
            "DGCF"
        );
    }
}
