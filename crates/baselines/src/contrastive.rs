//! Stochastic-augmentation contrastive baselines: SLRec (Yao et al., 2021),
//! SGL (Wu et al., 2021), and DGCL (Li et al., 2021).
//!
//! * **SLRec** contrasts two feature-dropout views of the raw embedding
//!   table (no propagation) on top of BPR matrix factorization.
//! * **SGL** contrasts two edge-dropout LightGCN views with InfoNCE over
//!   users and items.
//! * **DGCL** adds factor-wise discrimination: the embedding is split into
//!   four factors and each factor chunk is contrasted independently across
//!   the two edge-dropout views.

use std::sync::Arc;

use graphaug_core::nn::{
    bpr_loss, infonce_loss, lightgcn_propagate, lightgcn_propagate_ew, BprBatch,
};
use graphaug_core::EdgeIndex;
use graphaug_graph::{InteractionGraph, TripletSampler};
use graphaug_tensor::init::xavier_uniform;
use graphaug_tensor::{Graph, Mat, NodeId, ParamId};

use crate::common::{
    edge_dropout_weights, impl_recommender_trainable, refresh_cf, with_weight_decay, BaselineOpts,
    CfCore, CfModel,
};

/// Draws `n` random contrastive user indices and `n` random (offset) item
/// indices from the core's RNG.
fn contrastive_indices(core: &mut CfCore, n: usize) -> (Arc<Vec<u32>>, Arc<Vec<u32>>) {
    let mut sampler = TripletSampler::new(&core.train, core.rng.random());
    let users = Arc::new(sampler.sample_active_users(n));
    let n_items = core.train.n_items() as u32;
    let off = core.train.n_users() as u32;
    let items: Vec<u32> = (0..n.min(n_items as usize))
        .map(|_| off + core.rng.random_range(0..n_items))
        .collect();
    (users, Arc::new(items))
}

// ---------------------------------------------------------------------------
// SLRec
// ---------------------------------------------------------------------------

/// SLRec: feature-dropout contrastive learning over MF embeddings.
pub struct SlRec {
    core: CfCore,
    p_emb: ParamId,
}

impl SlRec {
    /// Initializes SLRec.
    pub fn new(opts: BaselineOpts, train: &InteractionGraph) -> Self {
        let mut core = CfCore::new(opts, train);
        let p_emb = core.store.register(xavier_uniform(
            train.n_nodes(),
            core.opts.embed_dim,
            &mut core.rng,
        ));
        let mut m = SlRec { core, p_emb };
        refresh_cf(&mut m);
        m
    }

    fn feature_dropout(&mut self, g: &mut Graph, emb: NodeId, keep: f32) -> NodeId {
        let (n, d) = g.value(emb).shape();
        let scale = 1.0 / keep;
        let rng = &mut self.core.rng;
        let mask = Arc::new(Mat::from_fn(n, d, |_, _| {
            if rng.random_range(0.0f32..1.0) < keep {
                scale
            } else {
                0.0
            }
        }));
        g.mul_const(emb, mask)
    }
}

impl CfModel for SlRec {
    fn core(&self) -> &CfCore {
        &self.core
    }
    fn core_mut(&mut self) -> &mut CfCore {
        &mut self.core
    }
    fn model_name(&self) -> &'static str {
        "SLRec"
    }
    fn encode_eval(&mut self, g: &mut Graph) -> NodeId {
        self.core.store.node(g, self.p_emb)
    }
    fn build_step(&mut self, g: &mut Graph, batch: &BprBatch) -> (NodeId, Vec<(ParamId, NodeId)>) {
        let emb = self.core.store.node(g, self.p_emb);
        let loss = bpr_loss(g, emb, batch);
        let v1 = self.feature_dropout(g, emb, 0.8);
        let v2 = self.feature_dropout(g, emb, 0.8);
        let n_cl = self.core.opts.cl_batch;
        let (users, items) = contrastive_indices(&mut self.core, n_cl);
        let cu = infonce_loss(g, v1, v2, &users, self.core.opts.temperature);
        let ci = infonce_loss(g, v1, v2, &items, self.core.opts.temperature);
        let c = g.add(cu, ci);
        let cw = g.scale(c, self.core.opts.ssl_weight);
        let with_cl = g.add(loss, cw);
        let pairs = vec![(self.p_emb, emb)];
        let total = with_weight_decay(g, with_cl, &pairs, self.core.opts.weight_decay);
        (total, pairs)
    }
}

impl_recommender_trainable!(SlRec);

// ---------------------------------------------------------------------------
// SGL / DGCL
// ---------------------------------------------------------------------------

/// Contrast granularity for the edge-dropout models.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeClKind {
    /// Whole-embedding InfoNCE (SGL).
    Sgl,
    /// Factor-wise InfoNCE over four chunks (DGCL).
    Dgcl,
}

/// SGL/DGCL: LightGCN with two edge-dropout views and InfoNCE alignment.
pub struct EdgeClCf {
    core: CfCore,
    kind: EdgeClKind,
    edge_index: EdgeIndex,
    p_emb: ParamId,
    /// Undirected-edge keep probability for the dropout views.
    keep_prob: f32,
}

impl EdgeClCf {
    /// Initializes the chosen variant.
    pub fn new(kind: EdgeClKind, opts: BaselineOpts, train: &InteractionGraph) -> Self {
        let mut core = CfCore::new(opts, train);
        let p_emb = core.store.register(xavier_uniform(
            train.n_nodes(),
            core.opts.embed_dim,
            &mut core.rng,
        ));
        let mut m = EdgeClCf {
            edge_index: EdgeIndex::build(train),
            core,
            kind,
            p_emb,
            keep_prob: 0.8,
        };
        refresh_cf(&mut m);
        m
    }

    /// SGL constructor.
    pub fn sgl(opts: BaselineOpts, train: &InteractionGraph) -> Self {
        Self::new(EdgeClKind::Sgl, opts, train)
    }

    /// DGCL constructor.
    pub fn dgcl(opts: BaselineOpts, train: &InteractionGraph) -> Self {
        Self::new(EdgeClKind::Dgcl, opts, train)
    }

    fn dropout_view(&mut self, g: &mut Graph, emb: NodeId) -> NodeId {
        let w = edge_dropout_weights(
            self.edge_index.n_edges(),
            &self.edge_index.dir_to_undir,
            &self.edge_index.norm,
            self.keep_prob,
            &mut self.core.rng,
        );
        let wn = g.constant((*w).clone());
        lightgcn_propagate_ew(g, &self.edge_index.pattern, wn, emb, self.core.opts.layers)
    }
}

impl CfModel for EdgeClCf {
    fn core(&self) -> &CfCore {
        &self.core
    }
    fn core_mut(&mut self) -> &mut CfCore {
        &mut self.core
    }
    fn model_name(&self) -> &'static str {
        match self.kind {
            EdgeClKind::Sgl => "SGL",
            EdgeClKind::Dgcl => "DGCL",
        }
    }
    fn encode_eval(&mut self, g: &mut Graph) -> NodeId {
        let emb = self.core.store.node(g, self.p_emb);
        lightgcn_propagate(g, &self.core.adj, emb, self.core.opts.layers)
    }
    fn build_step(&mut self, g: &mut Graph, batch: &BprBatch) -> (NodeId, Vec<(ParamId, NodeId)>) {
        let emb = self.core.store.node(g, self.p_emb);
        let h = lightgcn_propagate(g, &self.core.adj, emb, self.core.opts.layers);
        let loss = bpr_loss(g, h, batch);
        let v1 = self.dropout_view(g, emb);
        let v2 = self.dropout_view(g, emb);
        let n_cl = self.core.opts.cl_batch;
        let (users, items) = contrastive_indices(&mut self.core, n_cl);
        let tau = self.core.opts.temperature;
        let cl = match self.kind {
            EdgeClKind::Sgl => {
                let cu = infonce_loss(g, v1, v2, &users, tau);
                let ci = infonce_loss(g, v1, v2, &items, tau);
                g.add(cu, ci)
            }
            EdgeClKind::Dgcl => {
                // Factor-wise contrast: each chunk must align independently,
                // which discriminates latent factors across views.
                let d = self.core.opts.embed_dim;
                let k = 4;
                let dk = d / k;
                let mut acc: Option<NodeId> = None;
                for f in 0..k {
                    let c1 = g.slice_cols(v1, f * dk, (f + 1) * dk);
                    let c2 = g.slice_cols(v2, f * dk, (f + 1) * dk);
                    let cu = infonce_loss(g, c1, c2, &users, tau);
                    let ci = infonce_loss(g, c1, c2, &items, tau);
                    let s = g.add(cu, ci);
                    acc = Some(match acc {
                        Some(a) => g.add(a, s),
                        None => s,
                    });
                }
                let sum = acc.expect("factors > 0");
                g.scale(sum, 1.0 / k as f32)
            }
        };
        let cw = g.scale(cl, self.core.opts.ssl_weight);
        let with_cl = g.add(loss, cw);
        let pairs = vec![(self.p_emb, emb)];
        let total = with_weight_decay(g, with_cl, &pairs, self.core.opts.weight_decay);
        (total, pairs)
    }
}

impl_recommender_trainable!(EdgeClCf);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Trainable;
    use graphaug_data::{generate, SyntheticConfig};
    use graphaug_eval::{evaluate, Recommender};
    use graphaug_graph::TrainTestSplit;

    fn split() -> TrainTestSplit {
        let data = generate(&SyntheticConfig::new(80, 120, 900).clusters(4).seed(2));
        TrainTestSplit::per_user(&data, 0.2, 4)
    }

    #[test]
    fn slrec_trains_and_improves() {
        let s = split();
        let mut m = SlRec::new(BaselineOpts::fast_test().epochs(14), &s.train);
        let before = evaluate(&m, &s, &[5]).recall(5);
        m.fit();
        let after = evaluate(&m, &s, &[5]).recall(5);
        assert!(after > before, "before {before} after {after}");
    }

    #[test]
    fn sgl_trains_and_improves() {
        let s = split();
        let mut m = EdgeClCf::sgl(BaselineOpts::fast_test().epochs(12), &s.train);
        let before = evaluate(&m, &s, &[5]).recall(5);
        m.fit();
        let after = evaluate(&m, &s, &[5]).recall(5);
        assert!(after > before, "before {before} after {after}");
        assert_eq!(m.name(), "SGL");
    }

    #[test]
    fn dgcl_produces_finite_embeddings() {
        let s = split();
        let mut m = EdgeClCf::dgcl(BaselineOpts::fast_test().epochs(5), &s.train);
        m.fit();
        let (u, i) = m.embeddings().unwrap();
        assert!(u.all_finite() && i.all_finite());
        assert_eq!(m.name(), "DGCL");
    }
}
