//! Baseline recommenders for the GraphAug evaluation (paper Table II).
//!
//! Eighteen models spanning the paper's five paradigms, all built on the
//! same tensor/graph substrate and trained with the same BPR protocol so
//! comparisons isolate the modelling idea:
//!
//! | Paradigm | Models |
//! |---|---|
//! | Conventional CF | [`BiasMf`], [`Ncf`], [`AutoRec`] |
//! | GNN CF | [`GnnCf`]: GC-MC, PinSage, NGCF, LightGCN, GCCF |
//! | Disentangled | [`DisenCf`]: DisenGCN, DGCF |
//! | Generative SSL | [`Mhcn`], [`Stgcn`] |
//! | Contrastive SSL | [`SlRec`], [`EdgeClCf`] (SGL, DGCL), [`Hccf`], [`Ncl`], [`Cgi`] |
//!
//! Every model implements [`common::Trainable`] + `graphaug_eval::Recommender`;
//! use [`registry::build_model`] to construct one by its paper name.

pub mod autorec;
pub mod biasmf;
pub mod cgi;
pub mod common;
pub mod contrastive;
pub mod disentangled;
pub mod generative;
pub mod gnn;
pub mod hccf;
pub mod ncf;
pub mod ncl;
pub mod registry;

pub use autorec::AutoRec;
pub use biasmf::BiasMf;
pub use cgi::Cgi;
pub use common::{BaselineOpts, Trainable};
pub use contrastive::{EdgeClCf, EdgeClKind, SlRec};
pub use disentangled::{DisenCf, DisenKind};
pub use generative::{Mhcn, Stgcn};
pub use gnn::{GnnCf, GnnKind};
pub use hccf::Hccf;
pub use ncf::Ncf;
pub use ncl::Ncl;
pub use registry::{build_model, model_names};
