//! GNN-based collaborative filtering baselines: GC-MC, PinSage, NGCF,
//! LightGCN, and GCCF.
//!
//! All five share the BPR training protocol and the symmetric-normalized
//! bipartite adjacency; they differ only in the propagation rule, which is
//! what the paper's comparison isolates:
//!
//! * **GC-MC** — one graph-convolution layer with a dense transform;
//! * **PinSage** — concat-self aggregation `δ([H ‖ ÃH]W)` per layer;
//! * **NGCF** — affinity-modulated messages `δ(ÃHW₁ + (ÃH ⊙ H)W₂)`;
//! * **LightGCN** — transform-free propagation with mean readout;
//! * **GCCF** — linear residual propagation (no nonlinearity).

use graphaug_core::nn::{bpr_loss, lightgcn_propagate, BprBatch};
use graphaug_graph::InteractionGraph;
use graphaug_tensor::init::xavier_uniform;
use graphaug_tensor::{Graph, NodeId, ParamId};

use crate::common::{
    impl_recommender_trainable, refresh_cf, with_weight_decay, BaselineOpts, CfCore, CfModel,
};

/// Propagation rule selector for [`GnnCf`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GnnKind {
    /// GC-MC (Berg et al., 2017).
    GcMc,
    /// PinSage (Ying et al., 2018), full-graph variant.
    PinSage,
    /// NGCF (Wang et al., 2019).
    Ngcf,
    /// LightGCN (He et al., 2020).
    LightGcn,
    /// GCCF (Chen et al., 2020).
    Gccf,
}

impl GnnKind {
    fn name(self) -> &'static str {
        match self {
            GnnKind::GcMc => "GCMC",
            GnnKind::PinSage => "PinSage",
            GnnKind::Ngcf => "NGCF",
            GnnKind::LightGcn => "LightGCN",
            GnnKind::Gccf => "GCCF",
        }
    }

    /// Weight matrices needed per layer: `(count, rows_factor)` where the
    /// weight shape is `(rows_factor · d, d)`.
    fn weights_per_layer(self) -> Vec<usize> {
        match self {
            GnnKind::GcMc => vec![1],
            GnnKind::PinSage => vec![2],
            GnnKind::Ngcf => vec![1, 1],
            GnnKind::LightGcn | GnnKind::Gccf => vec![],
        }
    }
}

/// A GNN collaborative-filtering model parameterized by [`GnnKind`].
pub struct GnnCf {
    core: CfCore,
    kind: GnnKind,
    p_emb: ParamId,
    /// Per layer, the layer's weight parameter ids.
    p_weights: Vec<Vec<ParamId>>,
}

impl GnnCf {
    /// Initializes the chosen GNN variant.
    pub fn new(kind: GnnKind, opts: BaselineOpts, train: &InteractionGraph) -> Self {
        let mut core = CfCore::new(opts, train);
        let d = core.opts.embed_dim;
        let layers = if kind == GnnKind::GcMc {
            1
        } else {
            core.opts.layers
        };
        let p_emb = core
            .store
            .register(xavier_uniform(train.n_nodes(), d, &mut core.rng));
        let p_weights = (0..layers)
            .map(|_| {
                kind.weights_per_layer()
                    .iter()
                    .map(|&f| core.store.register(xavier_uniform(f * d, d, &mut core.rng)))
                    .collect()
            })
            .collect();
        let mut m = GnnCf {
            core,
            kind,
            p_emb,
            p_weights,
        };
        refresh_cf(&mut m);
        m
    }

    /// Convenience constructors.
    pub fn gcmc(opts: BaselineOpts, train: &InteractionGraph) -> Self {
        Self::new(GnnKind::GcMc, opts, train)
    }
    /// See [`GnnKind::PinSage`].
    pub fn pinsage(opts: BaselineOpts, train: &InteractionGraph) -> Self {
        Self::new(GnnKind::PinSage, opts, train)
    }
    /// See [`GnnKind::Ngcf`].
    pub fn ngcf(opts: BaselineOpts, train: &InteractionGraph) -> Self {
        Self::new(GnnKind::Ngcf, opts, train)
    }
    /// See [`GnnKind::LightGcn`].
    pub fn lightgcn(opts: BaselineOpts, train: &InteractionGraph) -> Self {
        Self::new(GnnKind::LightGcn, opts, train)
    }
    /// See [`GnnKind::Gccf`].
    pub fn gccf(opts: BaselineOpts, train: &InteractionGraph) -> Self {
        Self::new(GnnKind::Gccf, opts, train)
    }

    fn encode(&self, g: &mut Graph, emb: NodeId, weights: &[Vec<NodeId>]) -> NodeId {
        let slope = 0.5;
        let adj = &self.core.adj;
        match self.kind {
            GnnKind::GcMc => {
                let p = g.spmm(adj, emb);
                let t = g.matmul(p, weights[0][0]);
                g.sigmoid(t)
            }
            GnnKind::PinSage => {
                let mut h = emb;
                for w in weights {
                    let p = g.spmm(adj, h);
                    let cat = g.concat_cols(h, p);
                    let t = g.matmul(cat, w[0]);
                    h = g.leaky_relu(t, slope);
                }
                h
            }
            GnnKind::Ngcf => {
                let mut h = emb;
                let mut acc = emb;
                for w in weights {
                    let p = g.spmm(adj, h);
                    let t1 = g.matmul(p, w[0]);
                    let affinity = g.mul(p, h);
                    let t2 = g.matmul(affinity, w[1]);
                    let s = g.add(t1, t2);
                    h = g.leaky_relu(s, slope);
                    acc = g.add(acc, h);
                }
                g.scale(acc, 1.0 / (weights.len() as f32 + 1.0))
            }
            GnnKind::LightGcn => lightgcn_propagate(g, adj, emb, self.core.opts.layers),
            GnnKind::Gccf => {
                // Linear residual propagation: H ← ÃH + H, averaged readout.
                let mut h = emb;
                let mut acc = emb;
                for _ in 0..self.core.opts.layers {
                    let p = g.spmm(adj, h);
                    h = g.add(p, h);
                    acc = g.add(acc, h);
                }
                g.scale(acc, 1.0 / (self.core.opts.layers as f32 + 1.0))
            }
        }
    }

    fn weight_nodes(&self, g: &mut Graph) -> (Vec<Vec<NodeId>>, Vec<(ParamId, NodeId)>) {
        let mut pairs = Vec::new();
        let nodes = self
            .p_weights
            .iter()
            .map(|layer| {
                layer
                    .iter()
                    .map(|&p| {
                        let n = self.core.store.node(g, p);
                        pairs.push((p, n));
                        n
                    })
                    .collect()
            })
            .collect();
        (nodes, pairs)
    }
}

impl CfModel for GnnCf {
    fn core(&self) -> &CfCore {
        &self.core
    }
    fn core_mut(&mut self) -> &mut CfCore {
        &mut self.core
    }
    fn model_name(&self) -> &'static str {
        self.kind.name()
    }
    fn encode_eval(&mut self, g: &mut Graph) -> NodeId {
        let emb = self.core.store.node(g, self.p_emb);
        let (weights, _) = self.weight_nodes(g);
        self.encode(g, emb, &weights)
    }
    fn build_step(&mut self, g: &mut Graph, batch: &BprBatch) -> (NodeId, Vec<(ParamId, NodeId)>) {
        let emb = self.core.store.node(g, self.p_emb);
        let (weights, mut pairs) = self.weight_nodes(g);
        pairs.push((self.p_emb, emb));
        let h = self.encode(g, emb, &weights);
        let loss = bpr_loss(g, h, batch);
        let total = with_weight_decay(g, loss, &pairs, self.core.opts.weight_decay);
        (total, pairs)
    }
}

impl_recommender_trainable!(GnnCf);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Trainable;
    use graphaug_data::{generate, SyntheticConfig};
    use graphaug_eval::{evaluate, Recommender};
    use graphaug_graph::TrainTestSplit;

    fn split() -> TrainTestSplit {
        let data = generate(&SyntheticConfig::new(80, 120, 900).clusters(4).seed(2));
        TrainTestSplit::per_user(&data, 0.2, 4)
    }

    #[test]
    fn all_variants_construct_and_encode() {
        let s = split();
        for kind in [
            GnnKind::GcMc,
            GnnKind::PinSage,
            GnnKind::Ngcf,
            GnnKind::LightGcn,
            GnnKind::Gccf,
        ] {
            let m = GnnCf::new(kind, BaselineOpts::fast_test(), &s.train);
            let (u, i) = m.embeddings().unwrap();
            assert_eq!(u.rows(), 80, "{}", kind.name());
            assert_eq!(i.rows(), 120, "{}", kind.name());
            assert!(u.all_finite() && i.all_finite(), "{}", kind.name());
        }
    }

    #[test]
    fn lightgcn_training_improves_ranking() {
        let s = split();
        let mut m = GnnCf::lightgcn(BaselineOpts::fast_test().epochs(15), &s.train);
        let before = evaluate(&m, &s, &[5]).recall(5);
        m.fit();
        let after = evaluate(&m, &s, &[5]).recall(5);
        assert!(after > before, "before {before} after {after}");
    }

    #[test]
    fn ngcf_trains_without_nan() {
        let s = split();
        let mut m = GnnCf::ngcf(BaselineOpts::fast_test().epochs(4), &s.train);
        m.fit();
        let (u, i) = m.embeddings().unwrap();
        assert!(u.all_finite() && i.all_finite());
    }

    #[test]
    fn names_match_paper_labels() {
        let s = split();
        assert_eq!(
            GnnCf::gcmc(BaselineOpts::fast_test(), &s.train).name(),
            "GCMC"
        );
        assert_eq!(
            GnnCf::lightgcn(BaselineOpts::fast_test(), &s.train).name(),
            "LightGCN"
        );
    }

    #[test]
    fn gccf_is_linear_in_initial_embeddings() {
        // Doubling the embedding parameter doubles GCCF's output (linearity).
        let s = split();
        let mut m = GnnCf::gccf(BaselineOpts::fast_test(), &s.train);
        let before = m.embeddings().unwrap().0.clone();
        let emb = m.core.store.value_mut(m.p_emb);
        let doubled = emb.map(|x| 2.0 * x);
        *emb = doubled;
        refresh_cf(&mut m);
        let after = m.embeddings().unwrap().0;
        for (a, b) in before.as_slice().iter().zip(after.as_slice()) {
            assert!((2.0 * a - b).abs() < 1e-5);
        }
    }
}
