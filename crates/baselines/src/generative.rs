//! Generative-SSL baselines: MHCN (Yu et al., 2021) and STGCN
//! (Zhang et al., 2019).
//!
//! * **MHCN** combines two propagation channels (1-hop and 2-hop hypergraph-
//!   style aggregation over the bipartite graph) with a DGI-style mutual-
//!   information auxiliary task: user embeddings are scored against the
//!   global user summary, with row-shuffled corruptions as negatives. The
//!   paper's social-motif channels are replaced by co-interaction channels
//!   because the evaluation datasets carry no social graph (see DESIGN.md).
//! * **STGCN** augments LightGCN propagation with a latent-reconstruction
//!   pretext task: a linear decoder must recover the initial embeddings from
//!   the propagated ones.

use std::sync::Arc;

use graphaug_core::nn::{bpr_loss, lightgcn_propagate, BprBatch};
use graphaug_graph::InteractionGraph;
use graphaug_tensor::init::xavier_uniform;
use graphaug_tensor::{Graph, Mat, NodeId, ParamId};

use crate::common::{
    impl_recommender_trainable, refresh_cf, with_weight_decay, BaselineOpts, CfCore, CfModel,
};

/// MHCN: multi-channel hypergraph-style CF with a DGI auxiliary objective.
pub struct Mhcn {
    core: CfCore,
    p_emb: ParamId,
    p_w1: ParamId,
    p_w2: ParamId,
}

impl Mhcn {
    /// Initializes MHCN.
    pub fn new(opts: BaselineOpts, train: &InteractionGraph) -> Self {
        let mut core = CfCore::new(opts, train);
        let d = core.opts.embed_dim;
        let p_emb = core
            .store
            .register(xavier_uniform(train.n_nodes(), d, &mut core.rng));
        let p_w1 = core.store.register(xavier_uniform(d, d, &mut core.rng));
        let p_w2 = core.store.register(xavier_uniform(d, d, &mut core.rng));
        let mut m = Mhcn {
            core,
            p_emb,
            p_w1,
            p_w2,
        };
        refresh_cf(&mut m);
        m
    }

    fn encode(&self, g: &mut Graph, emb: NodeId, w1: NodeId, w2: NodeId) -> NodeId {
        // Channel 1: direct neighbors; channel 2: two-hop (hyperedge-like
        // user–item–user / item–user–item aggregation).
        let adj = &self.core.adj;
        let h1 = g.spmm(adj, emb);
        let c1 = g.matmul(h1, w1);
        let h2 = g.spmm(adj, h1);
        let c2 = g.matmul(h2, w2);
        let s = g.add(c1, c2);
        let act = g.leaky_relu(s, 0.5);
        let merged = g.add(act, emb);
        g.scale(merged, 0.5)
    }
}

impl CfModel for Mhcn {
    fn core(&self) -> &CfCore {
        &self.core
    }
    fn core_mut(&mut self) -> &mut CfCore {
        &mut self.core
    }
    fn model_name(&self) -> &'static str {
        "MHCN"
    }
    fn encode_eval(&mut self, g: &mut Graph) -> NodeId {
        let emb = self.core.store.node(g, self.p_emb);
        let w1 = self.core.store.node(g, self.p_w1);
        let w2 = self.core.store.node(g, self.p_w2);
        self.encode(g, emb, w1, w2)
    }
    fn build_step(&mut self, g: &mut Graph, batch: &BprBatch) -> (NodeId, Vec<(ParamId, NodeId)>) {
        let emb = self.core.store.node(g, self.p_emb);
        let w1 = self.core.store.node(g, self.p_w1);
        let w2 = self.core.store.node(g, self.p_w2);
        let h = self.encode(g, emb, w1, w2);
        let loss = bpr_loss(g, h, batch);

        // DGI-style MI maximization over users: positive score h_u · s,
        // negative score from row-shuffled embeddings.
        let n_users = self.core.train.n_users();
        let users: Arc<Vec<u32>> = Arc::new((0..n_users as u32).collect());
        let mut perm: Vec<u32> = (0..n_users as u32).collect();
        for i in (1..perm.len()).rev() {
            let j = self.core.rng.random_range(0..=i);
            perm.swap(i, j);
        }
        let perm = Arc::new(perm);
        let hu = g.gather_rows(h, Arc::clone(&users));
        let ones = g.constant(Mat::filled(1, n_users, 1.0 / n_users as f32));
        let summary = g.matmul(ones, hu); // 1 × d global readout
        let pos = g.matmul_nt(hu, summary); // n × 1
        let hcorrupt = g.gather_rows(hu, Arc::clone(&perm));
        let neg = g.matmul_nt(hcorrupt, summary);
        let neg_pos = g.scale(pos, -1.0);
        let sp_pos = g.softplus(neg_pos); // −log σ(pos)
        let sp_neg = g.softplus(neg); // −log σ(−neg)
        let dgi_sum = g.add(sp_pos, sp_neg);
        let dgi = g.mean_all(dgi_sum);
        let dgi_w = g.scale(dgi, self.core.opts.ssl_weight);
        let with_dgi = g.add(loss, dgi_w);

        let pairs = vec![(self.p_emb, emb), (self.p_w1, w1), (self.p_w2, w2)];
        let total = with_weight_decay(g, with_dgi, &pairs, self.core.opts.weight_decay);
        (total, pairs)
    }
}

impl_recommender_trainable!(Mhcn);

/// STGCN: LightGCN propagation plus an embedding-reconstruction pretext
/// task.
pub struct Stgcn {
    core: CfCore,
    p_emb: ParamId,
    p_dec: ParamId,
}

impl Stgcn {
    /// Initializes STGCN.
    pub fn new(opts: BaselineOpts, train: &InteractionGraph) -> Self {
        let mut core = CfCore::new(opts, train);
        let d = core.opts.embed_dim;
        let p_emb = core
            .store
            .register(xavier_uniform(train.n_nodes(), d, &mut core.rng));
        let p_dec = core.store.register(xavier_uniform(d, d, &mut core.rng));
        let mut m = Stgcn { core, p_emb, p_dec };
        refresh_cf(&mut m);
        m
    }
}

impl CfModel for Stgcn {
    fn core(&self) -> &CfCore {
        &self.core
    }
    fn core_mut(&mut self) -> &mut CfCore {
        &mut self.core
    }
    fn model_name(&self) -> &'static str {
        "STGCN"
    }
    fn encode_eval(&mut self, g: &mut Graph) -> NodeId {
        let emb = self.core.store.node(g, self.p_emb);
        lightgcn_propagate(g, &self.core.adj, emb, self.core.opts.layers)
    }
    fn build_step(&mut self, g: &mut Graph, batch: &BprBatch) -> (NodeId, Vec<(ParamId, NodeId)>) {
        let emb = self.core.store.node(g, self.p_emb);
        let dec = self.core.store.node(g, self.p_dec);
        let h = lightgcn_propagate(g, &self.core.adj, emb, self.core.opts.layers);
        let loss = bpr_loss(g, h, batch);
        // Reconstruction pretext: a linear decoder recovers the initial
        // embeddings from the propagated ones.
        let recon = g.matmul(h, dec);
        let diff = g.sub(recon, emb);
        let sq = g.square(diff);
        let mse = g.mean_all(sq);
        let mse_w = g.scale(mse, self.core.opts.ssl_weight);
        let with_recon = g.add(loss, mse_w);
        let pairs = vec![(self.p_emb, emb), (self.p_dec, dec)];
        let total = with_weight_decay(g, with_recon, &pairs, self.core.opts.weight_decay);
        (total, pairs)
    }
}

impl_recommender_trainable!(Stgcn);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Trainable;
    use graphaug_data::{generate, SyntheticConfig};
    use graphaug_eval::{evaluate, Recommender};
    use graphaug_graph::TrainTestSplit;

    fn split() -> TrainTestSplit {
        let data = generate(&SyntheticConfig::new(80, 120, 900).clusters(4).seed(2));
        TrainTestSplit::per_user(&data, 0.2, 4)
    }

    #[test]
    fn mhcn_trains_and_improves() {
        let s = split();
        let mut m = Mhcn::new(BaselineOpts::fast_test().epochs(12), &s.train);
        let before = evaluate(&m, &s, &[5]).recall(5);
        m.fit();
        let after = evaluate(&m, &s, &[5]).recall(5);
        assert!(after > before, "before {before} after {after}");
        assert_eq!(m.name(), "MHCN");
    }

    #[test]
    fn stgcn_trains_without_nan() {
        let s = split();
        let mut m = Stgcn::new(BaselineOpts::fast_test().epochs(6), &s.train);
        m.fit();
        let (u, i) = m.embeddings().unwrap();
        assert!(u.all_finite() && i.all_finite());
        assert_eq!(m.name(), "STGCN");
    }
}
