//! Deterministic fault injection for exercising the recovery paths.
//!
//! A [`FaultPlan`] is keyed on the runtime's monotonic *attempt* counter —
//! not the model's applied-step counter — so an injection fires exactly once
//! even when recovery (skip, rollback) replays the surrounding steps. The
//! file helpers damage checkpoints on disk the way real incidents do: torn
//! writes (truncation) and bit rot (a flipped byte).

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

/// A scripted schedule of faults for one training run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    nan_grad_at: BTreeSet<u64>,
    halt_before_attempt: Option<u64>,
    halt_after_epoch: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Poisons the first gradient entry with NaN on the given step attempt
    /// (0-based, counted across the whole run including recovered steps).
    pub fn nan_grad_at(mut self, attempt: u64) -> Self {
        self.nan_grad_at.insert(attempt);
        self
    }

    /// Simulates a crash *between batches*: the runtime returns before
    /// executing the given attempt, leaving whatever checkpoints exist on
    /// disk — exactly the state a `kill -9` at that moment would leave.
    pub fn halt_before_attempt(mut self, attempt: u64) -> Self {
        self.halt_before_attempt = Some(attempt);
        self
    }

    /// Simulates a crash *between epochs*: the runtime returns right after
    /// the given epoch's checkpoint is written.
    pub fn halt_after_epoch(mut self, epoch: u64) -> Self {
        self.halt_after_epoch = Some(epoch);
        self
    }

    /// Whether to poison gradients on this attempt.
    pub fn inject_nan(&self, attempt: u64) -> bool {
        self.nan_grad_at.contains(&attempt)
    }

    /// Whether to simulate a kill before this attempt.
    pub fn should_halt_before(&self, attempt: u64) -> bool {
        self.halt_before_attempt == Some(attempt)
    }

    /// Whether to simulate a kill after this epoch.
    pub fn should_halt_after_epoch(&self, epoch: u64) -> bool {
        self.halt_after_epoch == Some(epoch)
    }
}

/// Flips one byte of a checkpoint file in place (simulated bit rot). The
/// index is taken modulo the file length so tests can aim at "somewhere in
/// the payload" without knowing the exact size.
pub fn corrupt_checkpoint(path: &Path, byte_index: usize) -> io::Result<()> {
    let mut bytes = fs::read(path)?;
    if bytes.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "cannot corrupt an empty file",
        ));
    }
    let i = byte_index % bytes.len();
    bytes[i] ^= 0xFF;
    fs::write(path, bytes)
}

/// Truncates a checkpoint file to its first `keep_bytes` bytes (simulated
/// torn write / disk-full).
pub fn truncate_checkpoint(path: &Path, keep_bytes: usize) -> io::Result<()> {
    let bytes = fs::read(path)?;
    let keep = keep_bytes.min(bytes.len());
    fs::write(path, &bytes[..keep])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_fires_exactly_on_the_scheduled_attempts() {
        let plan = FaultPlan::none().nan_grad_at(3).nan_grad_at(7);
        let fired: Vec<u64> = (0..10).filter(|&a| plan.inject_nan(a)).collect();
        assert_eq!(fired, vec![3, 7]);
        assert!(!plan.should_halt_before(3));
    }

    #[test]
    fn halts_are_single_points() {
        let plan = FaultPlan::none().halt_before_attempt(5).halt_after_epoch(2);
        assert!(plan.should_halt_before(5));
        assert!(!plan.should_halt_before(4));
        assert!(plan.should_halt_after_epoch(2));
        assert!(!plan.should_halt_after_epoch(1));
    }

    #[test]
    fn file_damage_helpers_change_the_bytes() {
        let dir = std::env::temp_dir().join(format!("graphaug-fault-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.bin");
        fs::write(&path, [1u8, 2, 3, 4, 5]).unwrap();
        corrupt_checkpoint(&path, 1).unwrap();
        assert_eq!(fs::read(&path).unwrap(), vec![1, 2 ^ 0xFF, 3, 4, 5]);
        truncate_checkpoint(&path, 2).unwrap();
        assert_eq!(fs::read(&path).unwrap().len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }
}
