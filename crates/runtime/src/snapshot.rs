//! Hermetic binary snapshot framing: a little-endian byte codec plus a
//! checksummed, versioned container.
//!
//! Layout of a snapshot file:
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     8  magic  b"GAUGCKPT"
//!      8     4  format version (u32 LE)
//!     12     8  payload length in bytes (u64 LE)
//!     20     8  FNV-1a 64-bit checksum over the payload (u64 LE)
//!     28     n  payload
//! ```
//!
//! Readers reject bad magic, unknown versions, short files, and checksum
//! mismatches with a typed [`SnapshotError`] — a torn or bit-flipped
//! checkpoint must *never* be half-loaded into a training run.

/// File magic identifying a GraphAug checkpoint.
pub const MAGIC: &[u8; 8] = b"GAUGCKPT";

/// Current snapshot format version. Version 2 added the online-learning
/// cursors (`step_in_epoch`, `log_offset`, `finetunes`) to `TrainState`.
pub const FORMAT_VERSION: u32 = 2;

/// Why a snapshot could not be read (or decoded).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Underlying file I/O failed.
    Io(String),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The header declares a format version this build cannot read.
    BadVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// The file ended before the declared payload did (torn write).
    Truncated {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The payload checksum did not match the header (bit rot / corruption).
    ChecksumMismatch,
    /// The payload decoded to something structurally impossible.
    Malformed(String),
    /// The snapshot is internally consistent but belongs to a different
    /// run (dataset shape, seed, or embedding dimension differ).
    Incompatible(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "checkpoint io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a GraphAug checkpoint (bad magic)"),
            SnapshotError::BadVersion { found, supported } => {
                write!(
                    f,
                    "checkpoint format v{found} unsupported (this build reads v{supported})"
                )
            }
            SnapshotError::Truncated { expected, got } => {
                write!(
                    f,
                    "checkpoint truncated: expected {expected} payload bytes, got {got}"
                )
            }
            SnapshotError::ChecksumMismatch => write!(f, "checkpoint payload checksum mismatch"),
            SnapshotError::Malformed(msg) => write!(f, "malformed checkpoint payload: {msg}"),
            SnapshotError::Incompatible(msg) => {
                write!(f, "checkpoint belongs to a different run: {msg}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit checksum — tiny, dependency-free, and plenty to catch the
/// torn writes and flipped bytes this layer defends against (it is not a
/// cryptographic integrity guarantee).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wraps a payload in the checksummed snapshot frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(28 + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a framed snapshot and returns the payload slice.
pub fn unframe(bytes: &[u8]) -> Result<&[u8], SnapshotError> {
    if bytes.len() < 28 {
        if bytes.len() < 8 || &bytes[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        return Err(SnapshotError::Truncated {
            expected: 28,
            got: bytes.len(),
        });
    }
    if &bytes[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(SnapshotError::BadVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let payload = &bytes[28..];
    if payload.len() != len {
        return Err(SnapshotError::Truncated {
            expected: len,
            got: payload.len(),
        });
    }
    if fnv1a64(payload) != checksum {
        return Err(SnapshotError::ChecksumMismatch);
    }
    Ok(payload)
}

/// Little-endian byte sink for payload encoding.
#[derive(Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes and returns the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` as its little-endian bit pattern (bit-exact: NaN
    /// payloads and signed zeros survive the round trip).
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a length-prefixed `f32` slice.
    pub fn put_f32_slice(&mut self, vs: &[f32]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_f32(v);
        }
    }

    /// Appends a `[u64; 4]` RNG state.
    pub fn put_rng(&mut self, s: [u64; 4]) {
        for w in s {
            self.put_u64(w);
        }
    }
}

/// Little-endian byte cursor for payload decoding. Every read is
/// bounds-checked and fails with [`SnapshotError::Malformed`] instead of
/// panicking.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A cursor over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Malformed(format!(
                "wanted {n} more bytes, had {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f32` from its bit pattern.
    pub fn get_f32(&mut self) -> Result<f32, SnapshotError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads a length-prefixed `f32` vector.
    pub fn get_f32_vec(&mut self) -> Result<Vec<f32>, SnapshotError> {
        let n = self.get_u64()? as usize;
        if self.remaining() < n.saturating_mul(4) {
            return Err(SnapshotError::Malformed(format!(
                "f32 slice claims {n} entries but only {} bytes remain",
                self.remaining()
            )));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f32()?);
        }
        Ok(out)
    }

    /// Reads a `[u64; 4]` RNG state.
    pub fn get_rng(&mut self) -> Result<[u64; 4], SnapshotError> {
        Ok([
            self.get_u64()?,
            self.get_u64()?,
            self.get_u64()?,
            self.get_u64()?,
        ])
    }

    /// Asserts the payload is fully consumed (trailing garbage is as
    /// suspicious as missing bytes).
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let payload = b"hello checkpoint".to_vec();
        let framed = frame(&payload);
        assert_eq!(unframe(&framed).unwrap(), payload.as_slice());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut framed = frame(b"x");
        framed[0] ^= 0xFF;
        assert_eq!(unframe(&framed).unwrap_err(), SnapshotError::BadMagic);
        assert_eq!(unframe(b"short").unwrap_err(), SnapshotError::BadMagic);
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut framed = frame(b"x");
        framed[8] = 99;
        assert_eq!(
            unframe(&framed).unwrap_err(),
            SnapshotError::BadVersion {
                found: 99,
                supported: FORMAT_VERSION
            }
        );
    }

    #[test]
    fn truncation_is_detected() {
        let framed = frame(b"some payload bytes");
        let torn = &framed[..framed.len() - 5];
        assert!(matches!(
            unframe(torn).unwrap_err(),
            SnapshotError::Truncated { .. }
        ));
        // Torn inside the header itself.
        assert!(matches!(
            unframe(&framed[..10]).unwrap_err(),
            SnapshotError::Truncated { .. }
        ));
    }

    #[test]
    fn payload_corruption_is_detected() {
        let mut framed = frame(b"some payload bytes");
        let last = framed.len() - 1;
        framed[last] ^= 0x01;
        assert_eq!(
            unframe(&framed).unwrap_err(),
            SnapshotError::ChecksumMismatch
        );
    }

    #[test]
    fn byte_codec_round_trips_bit_exactly() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_f32(-0.0);
        w.put_f32(f32::NAN);
        w.put_f32_slice(&[1.5, -2.25, 3.125]);
        w.put_rng([1, 2, 3, 4]);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert_eq!(r.get_f32().unwrap().to_bits(), f32::NAN.to_bits());
        assert_eq!(r.get_f32_vec().unwrap(), vec![1.5, -2.25, 3.125]);
        assert_eq!(r.get_rng().unwrap(), [1, 2, 3, 4]);
        r.finish().unwrap();
    }

    #[test]
    fn reader_rejects_short_and_oversized_claims() {
        let mut w = ByteWriter::new();
        w.put_u64(1_000_000); // slice claims a million floats…
        let bytes = w.into_bytes(); // …but provides none
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            r.get_f32_vec().unwrap_err(),
            SnapshotError::Malformed(_)
        ));

        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(r.get_u32(), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let r = ByteReader::new(&[0xAA]);
        assert!(matches!(r.finish(), Err(SnapshotError::Malformed(_))));
    }
}
