//! The standard demo workload shared by the demo binaries (`serve_main`,
//! `ingestd`, the kill/resume harness) and the CI smokes.
//!
//! Centralizing the numbers matters for the online-learning loop: the
//! ingestion daemon that trains/fine-tunes and the serving process that
//! reloads its checkpoints must agree *exactly* on the graph and the
//! hyperparameters, or the compat check refuses the handoff.

use graphaug_core::GraphAugConfig;
use graphaug_data::{generate, SyntheticConfig};
use graphaug_graph::TrainTestSplit;

/// The deterministic demo workload (same shape as the kill/resume smoke
/// harness, so its cost is already CI-calibrated).
pub fn demo_split() -> TrainTestSplit {
    let graph = generate(&SyntheticConfig::new(150, 120, 2200).clusters(6).seed(42));
    TrainTestSplit::per_user(&graph, 0.2, 7)
}

/// Hyperparameters for the demo model trained over [`demo_split`].
pub fn demo_config() -> GraphAugConfig {
    GraphAugConfig::fast_test()
        .seed(9)
        .epochs(8)
        .steps_per_epoch(4)
}
