//! The online-learning loop: watching the interaction log and warm-start
//! fine-tuning the latest checkpoint over windows of fresh interactions.
//!
//! # Watermarks and windows
//!
//! Every checkpoint carries a `log_offset` watermark: the model state was
//! trained on the base graph plus log records `[0, log_offset)`. The
//! [`FineTuner`] advances that watermark in fixed windows of `window`
//! records: a fine-tune round fires only once a *complete* window of new
//! records exists beyond the current watermark, and a partial tail stays
//! pending. Fixed windows are what make the loop replayable — live
//! ingestion (rounds firing as the log grows) and offline replay (rounds
//! fired back-to-back over a finished log) walk the identical sequence of
//! (graph, window) pairs, so they produce byte-identical checkpoints.
//!
//! # One round
//!
//! 1. read records `[w, w + window)` (checksum-verified),
//! 2. [`apply_deltas`] onto the current graph (dedup + re-validate),
//! 3. [`Runtime::absorb_deltas`] — the model is rebuilt over the grown
//!    graph with its parameters/optimizer/RNG streams restored,
//! 4. [`Runtime::fine_tune_round`] — one extra epoch of
//!    `cfg.model.steps_per_epoch` guarded steps continuing the persisted
//!    sampler stream, then a checkpoint publish the serving watcher picks
//!    up with zero downtime.

use std::path::{Path, PathBuf};

use graphaug_graph::InteractionGraph;
use graphaug_ingest::{apply_deltas, log_len, read_range, IngestError};

use crate::runtime::{Runtime, RuntimeConfig, RuntimeError};

/// Why the online loop could not proceed.
#[derive(Debug)]
pub enum OnlineError {
    /// Training-side failure (checkpointing, restore, divergence).
    Runtime(RuntimeError),
    /// Log-side failure (corrupt record, chain gap, out-of-range ids).
    Ingest(IngestError),
}

impl std::fmt::Display for OnlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnlineError::Runtime(e) => write!(f, "online runtime error: {e}"),
            OnlineError::Ingest(e) => write!(f, "online ingest error: {e}"),
        }
    }
}

impl std::error::Error for OnlineError {}

impl From<RuntimeError> for OnlineError {
    fn from(e: RuntimeError) -> Self {
        OnlineError::Runtime(e)
    }
}

impl From<IngestError> for OnlineError {
    fn from(e: IngestError) -> Self {
        OnlineError::Ingest(e)
    }
}

/// What one fine-tune round did.
#[derive(Clone, Debug)]
pub struct RoundReport {
    /// Fine-tune rounds applied in total after this one.
    pub round: u64,
    /// The watermark after this round (records `[0, watermark)` absorbed).
    pub watermark: u64,
    /// New edges this round's window added to the graph.
    pub applied: usize,
    /// Window records that were duplicates of existing edges.
    pub duplicates: usize,
    /// Guarded training steps executed.
    pub steps: usize,
    /// Mean loss over the round's applied steps (`NaN` when none applied).
    pub mean_loss: f32,
}

/// The incremental trainer: owns a [`Runtime`] resumed from the latest
/// checkpoint and a watermark-resolved graph, and turns complete log
/// windows into checkpoint generations.
pub struct FineTuner {
    rt: Runtime,
    graph: InteractionGraph,
    log_dir: PathBuf,
    window: u64,
}

impl FineTuner {
    /// Resumes the online loop from the newest valid checkpoint under
    /// `cfg.checkpoint_dir`: the checkpoint's watermark decides how much
    /// of the log is replayed onto `base` before the runtime restores —
    /// so the resumed graph is exactly the one the checkpoint was trained
    /// on, wherever in the stream the previous process died.
    ///
    /// `window` is the fixed round size in records and must match across
    /// every process that ever advanced this checkpoint directory —
    /// it defines the replayable round boundaries.
    pub fn open(
        cfg: RuntimeConfig,
        base: &InteractionGraph,
        log_dir: &Path,
        window: u64,
    ) -> Result<FineTuner, OnlineError> {
        assert!(window >= 1, "window must be >= 1");
        let dir = cfg
            .checkpoint_dir
            .clone()
            .expect("FineTuner::open requires a checkpoint_dir");
        let Some((_, state)) = crate::checkpoint::load_latest_valid(&dir) else {
            return Err(OnlineError::Runtime(RuntimeError::NoCheckpoint(dir)));
        };
        let graph = if state.log_offset == 0 {
            base.clone()
        } else {
            let records = read_range(log_dir, 0, state.log_offset)?;
            apply_deltas(base, &records)?.graph
        };
        let rt = Runtime::resume(cfg, &graph)?;
        Ok(FineTuner {
            rt,
            graph,
            log_dir: log_dir.to_path_buf(),
            window,
        })
    }

    /// The current watermark.
    pub fn watermark(&self) -> u64 {
        self.rt.log_offset()
    }

    /// Fine-tune rounds applied so far (across resumes).
    pub fn finetunes(&self) -> u64 {
        self.rt.finetunes()
    }

    /// The graph as of the current watermark.
    pub fn graph(&self) -> &InteractionGraph {
        &self.graph
    }

    /// The underlying runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// Runs one fine-tune round if a complete window of fresh records is
    /// available; `Ok(None)` means the log has no full window yet (the
    /// pending tail, if any, stays untouched).
    pub fn poll_once(&mut self) -> Result<Option<RoundReport>, OnlineError> {
        let w = self.rt.log_offset();
        if log_len(&self.log_dir)? < w + self.window {
            return Ok(None);
        }
        let records = read_range(&self.log_dir, w, w + self.window)?;
        let delta = apply_deltas(&self.graph, &records)?;
        self.rt.absorb_deltas(&delta.graph, w + self.window)?;
        self.graph = delta.graph;
        let report = self.rt.fine_tune_round()?;
        let steps = report.step_losses.len();
        let mean_loss = report.step_losses.iter().sum::<f32>() / steps as f32;
        Ok(Some(RoundReport {
            round: self.rt.finetunes(),
            watermark: self.rt.log_offset(),
            applied: delta.applied,
            duplicates: delta.duplicates,
            steps,
            mean_loss,
        }))
    }

    /// Drains every complete window currently in the log — the replay
    /// path: after this, the watermark is within one window of the log's
    /// end, and the checkpoints written are byte-identical to the ones a
    /// live process produced while the log was streaming in.
    pub fn run_pending(&mut self) -> Result<Vec<RoundReport>, OnlineError> {
        let mut out = Vec::new();
        while let Some(report) = self.poll_once()? {
            out.push(report);
        }
        Ok(out)
    }
}
