//! The ingestion + incremental-training daemon driven by `ci.sh` and the
//! README quickstart.
//!
//! ```text
//! ingestd <checkpoint-dir> <log-dir> [--addr HOST:PORT] [--window N]
//!         [--round-steps N] [--poll-ms N] [--segment-records N] [--replay]
//! ```
//!
//! Runs the online-learning loop over the standard demo workload (the same
//! deterministic graph and hyperparameters `serve_main` uses, via
//! [`graphaug_runtime::demo`]):
//!
//! 1. if `<checkpoint-dir>` holds no valid checkpoint, trains the demo
//!    base model there first (checkpoint every epoch);
//! 2. **live mode** (default): opens the interaction log, starts the TCP
//!    `PUT` listener (printing `READY addr=… gen=… watermark=…`), and polls
//!    the log — every complete window of `--window` fresh records triggers
//!    a warm-start fine-tune round of `--round-steps` steps and publishes
//!    a new checkpoint generation (printing a `FINETUNE …` line with the
//!    checkpoint fingerprint), which a `serve_main --log-dir` process
//!    watching the same directory hot-reloads with zero downtime;
//! 3. **`--replay` mode**: no listener — drains every complete window
//!    already in the log back-to-back, prints the same `FINETUNE` lines,
//!    then `REPLAY done …` and exits. Because rounds fire at fixed log
//!    offsets, a replay over a finished log writes checkpoints
//!    byte-identical to the live run that produced the log — at any
//!    `GRAPHAUG_THREADS`.

use std::path::Path;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use graphaug_ingest::{start_ingest, LogWriter};
use graphaug_runtime::{checkpoint, demo, FineTuner, RoundReport, Runtime, RuntimeConfig};

struct Args {
    ckpt_dir: String,
    log_dir: String,
    addr: String,
    window: u64,
    round_steps: usize,
    poll_ms: u64,
    segment_records: u64,
    replay: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let ckpt_dir = args.next().ok_or("missing <checkpoint-dir>")?;
    let log_dir = args.next().ok_or("missing <log-dir>")?;
    let mut out = Args {
        ckpt_dir,
        log_dir,
        addr: "127.0.0.1:0".into(),
        window: 32,
        round_steps: 4,
        poll_ms: 20,
        segment_records: 4096,
        replay: false,
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => out.addr = value("--addr")?,
            "--window" => {
                out.window = value("--window")?
                    .parse()
                    .ok()
                    .filter(|&w: &u64| w >= 1)
                    .ok_or("bad --window (wants an integer >= 1)")?
            }
            "--round-steps" => {
                out.round_steps = value("--round-steps")?
                    .parse()
                    .ok()
                    .filter(|&s: &usize| s >= 1)
                    .ok_or("bad --round-steps (wants an integer >= 1)")?
            }
            "--poll-ms" => {
                out.poll_ms = value("--poll-ms")?
                    .parse()
                    .map_err(|_| "bad --poll-ms".to_string())?
            }
            "--segment-records" => {
                out.segment_records = value("--segment-records")?
                    .parse()
                    .ok()
                    .filter(|&n: &u64| n >= 1)
                    .ok_or("bad --segment-records (wants an integer >= 1)")?
            }
            "--replay" => out.replay = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(out)
}

/// `FINETUNE` line for one round: everything a smoke needs to compare a
/// live run against a replay (`ckpt_fnv` is the frame checksum of the
/// newest checkpoint — byte-identity of generations in one hex token).
fn finetune_line(dir: &Path, report: &RoundReport) -> String {
    let (gen_str, fnv) = match checkpoint::load_latest_valid_with_fingerprint(dir) {
        Some((generation, _, fingerprint)) => (generation.to_string(), fingerprint),
        None => ("-".into(), 0),
    };
    format!(
        "FINETUNE round={} gen={gen_str} watermark={} applied={} dups={} steps={} loss={:.6} ckpt_fnv={fnv:016x}",
        report.round, report.watermark, report.applied, report.duplicates, report.steps,
        report.mean_loss,
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ingestd: {e}");
            eprintln!(
                "usage: ingestd <checkpoint-dir> <log-dir> [--addr HOST:PORT] [--window N] \
                 [--round-steps N] [--poll-ms N] [--segment-records N] [--replay]"
            );
            return ExitCode::from(2);
        }
    };

    let split = demo::demo_split();
    let ckpt_dir = Path::new(&args.ckpt_dir);
    let log_dir = Path::new(&args.log_dir);

    // Train the demo base model if the directory is empty — with the
    // *base* hyperparameters, so the checkpoint chain starts exactly like
    // `serve_main`'s.
    if checkpoint::load_latest_valid(ckpt_dir).is_none() {
        println!(
            "no valid checkpoint under {} — training demo base model",
            ckpt_dir.display()
        );
        let base_cfg = RuntimeConfig::new(demo::demo_config()).checkpoint_dir(ckpt_dir);
        let report = Runtime::new(base_cfg, &split.train).and_then(|mut rt| rt.run());
        match report {
            Ok(r) => println!(
                "trained base model: {} epochs, {} checkpoints",
                r.epochs_completed, r.checkpoints_written
            ),
            Err(e) => {
                eprintln!("ingestd: base training failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Fine-tune rounds run `--round-steps` steps each: same model config,
    // different steps_per_epoch. Replay must use the same value.
    let tune_cfg = RuntimeConfig::new(demo::demo_config().steps_per_epoch(args.round_steps))
        .checkpoint_dir(ckpt_dir);
    let mut tuner = match FineTuner::open(tune_cfg, &split.train, log_dir, args.window) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ingestd: cannot open fine-tuner: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.replay {
        // Drain round by round (rather than `run_pending`) so each
        // `FINETUNE` line carries *that round's* generation and
        // fingerprint — byte-comparable against a live run's log.
        let mut reports = Vec::new();
        loop {
            match tuner.poll_once() {
                Ok(Some(report)) => {
                    println!("{}", finetune_line(ckpt_dir, &report));
                    reports.push(report);
                }
                Ok(None) => break,
                Err(e) => {
                    eprintln!("ingestd: replay failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let fnv = checkpoint::load_latest_valid_with_fingerprint(ckpt_dir)
            .map(|(_, _, fingerprint)| fingerprint)
            .unwrap_or(0);
        println!(
            "REPLAY done rounds={} watermark={} finetunes={} ckpt_fnv={fnv:016x}",
            reports.len(),
            tuner.watermark(),
            tuner.finetunes(),
        );
        return ExitCode::SUCCESS;
    }

    // Live mode: PUT listener + polling loop.
    let log = match LogWriter::open(log_dir, args.segment_records) {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(e) => {
            eprintln!("ingestd: cannot open log {}: {e}", log_dir.display());
            return ExitCode::FAILURE;
        }
    };
    let handle = match start_ingest(
        log.clone(),
        split.train.n_users(),
        split.train.n_items(),
        &args.addr,
    ) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("ingestd: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let generation = checkpoint::newest_generation(ckpt_dir).unwrap_or(0);
    println!(
        "READY addr={} gen={generation} watermark={}",
        handle.addr(),
        tuner.watermark()
    );

    loop {
        match tuner.poll_once() {
            Ok(Some(report)) => println!("{}", finetune_line(ckpt_dir, &report)),
            Ok(None) => std::thread::sleep(Duration::from_millis(args.poll_ms)),
            Err(e) => {
                eprintln!("ingestd: fine-tune round failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
}
