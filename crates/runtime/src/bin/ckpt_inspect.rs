//! Checkpoint-directory inspector: prints what a serving process or a
//! resume would actually see, so misconfigurations ("why won't it load?")
//! are debuggable without attaching a debugger.
//!
//! ```text
//! ckpt_inspect <checkpoint-dir>
//! ```
//!
//! For every `ckpt-*.bin` generation (newest first) it prints the format
//! version, payload/checksum status, the [`RunCompat`] identity (users /
//! items / edges / seed / embedding dim), and the training progress the
//! file captures. Exits non-zero when no generation decodes cleanly — the
//! same condition under which `Runtime::resume` or a serving engine would
//! refuse to start.

use std::path::Path;
use std::process::ExitCode;

use graphaug_runtime::{inspect_dir, load_latest_valid, RunCompat};

fn compat_line(c: &RunCompat) -> String {
    format!(
        "users={} items={} edges={} seed={} embed_dim={}",
        c.n_users, c.n_items, c.n_edges, c.seed, c.embed_dim
    )
}

fn main() -> ExitCode {
    let Some(dir) = std::env::args().nth(1) else {
        eprintln!("usage: ckpt_inspect <checkpoint-dir>");
        return ExitCode::from(2);
    };
    let dir = Path::new(&dir);
    if !dir.is_dir() {
        eprintln!("ckpt_inspect: {} is not a directory", dir.display());
        return ExitCode::from(2);
    }

    let infos = inspect_dir(dir);
    if infos.is_empty() {
        println!("no checkpoint generations under {}", dir.display());
        return ExitCode::from(1);
    }
    println!("checkpoint directory: {}", dir.display());
    for info in &infos {
        match &info.status {
            Ok(s) => {
                println!(
                    "gen {:>8}  {:>10} bytes  v{}  checksum OK   epoch={} steps={}  {}",
                    info.generation,
                    info.bytes,
                    s.format_version,
                    s.epoch,
                    s.steps_taken,
                    compat_line(&s.compat)
                );
            }
            Err(e) => {
                println!(
                    "gen {:>8}  {:>10} bytes  UNUSABLE: {e}",
                    info.generation, info.bytes
                );
            }
        }
    }
    match load_latest_valid(dir) {
        Some((g, state)) => {
            println!(
                "newest valid generation: {} (epoch {}, {})",
                g,
                state.epoch,
                compat_line(&state.compat)
            );
            ExitCode::SUCCESS
        }
        None => {
            println!("no valid generation: a resume or serving start here would fail");
            ExitCode::from(1)
        }
    }
}
