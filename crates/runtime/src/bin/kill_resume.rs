//! Child-process kill/resume smoke harness (driven by `ci.sh`).
//!
//! Three modes over a shared deterministic workload:
//!
//! * `kill_resume reference <dir>` — train uninterrupted, print the FINAL
//!   line (bit-exact model fingerprint + ranking metrics).
//! * `kill_resume victim <dir>`    — same run, but checkpoint every epoch,
//!   print `EPOCH k` as each completes, and pause briefly between epochs so
//!   the harness can land a `kill -9` mid-run.
//! * `kill_resume resume <dir>`    — resume from the newest valid checkpoint
//!   in `<dir>`, finish the run, print the FINAL line.
//!
//! The contract under test: `victim` (killed anywhere) followed by `resume`
//! prints a FINAL line byte-identical to `reference` — at any
//! `GRAPHAUG_THREADS` setting.

use std::io::Write as _;
use std::path::Path;
use std::process::ExitCode;

use graphaug_core::GraphAugConfig;
use graphaug_data::{generate, SyntheticConfig};
use graphaug_eval::{evaluate, Recommender};
use graphaug_graph::TrainTestSplit;
use graphaug_runtime::snapshot::fnv1a64;
use graphaug_runtime::{Runtime, RuntimeConfig};

fn workload() -> TrainTestSplit {
    let graph = generate(&SyntheticConfig::new(150, 120, 2200).clusters(6).seed(42));
    TrainTestSplit::per_user(&graph, 0.2, 7)
}

fn config(dir: &Path) -> RuntimeConfig {
    let model = GraphAugConfig::fast_test()
        .seed(9)
        .epochs(8)
        .steps_per_epoch(4);
    RuntimeConfig::new(model).checkpoint_dir(dir)
}

/// Order-stable 64-bit fingerprint over the exact embedding bit patterns:
/// two models print the same fingerprint iff their embeddings are
/// bit-identical.
fn fingerprint(model: &dyn Recommender) -> u64 {
    let (u, i) = model.embeddings().expect("embedding model");
    let mut bytes = Vec::with_capacity(4 * (u.len() + i.len()));
    for &x in u.as_slice().iter().chain(i.as_slice()) {
        bytes.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    fnv1a64(&bytes)
}

fn print_final(rt: &Runtime, split: &TrainTestSplit) {
    let result = evaluate(rt.model(), split, &[20]);
    println!(
        "FINAL fp={:016x} {} recall20={:.6} ndcg20={:.6} epochs={}",
        fingerprint(rt.model()),
        result.bitline(),
        result.recall(20),
        result.ndcg(20),
        rt.epochs_completed()
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (mode, dir) = match args.as_slice() {
        [_, mode, dir] => (mode.as_str(), Path::new(dir)),
        _ => {
            eprintln!("usage: kill_resume <reference|victim|resume> <checkpoint-dir>");
            return ExitCode::from(2);
        }
    };
    let split = workload();
    let cfg = config(dir);
    let total = cfg.model.epochs as u64;

    match mode {
        "reference" => {
            let mut rt = Runtime::new(cfg, &split.train).expect("fresh runtime");
            rt.run().expect("uninterrupted run");
            print_final(&rt, &split);
        }
        "victim" => {
            let mut rt = Runtime::new(cfg, &split.train).expect("fresh runtime");
            while rt.epochs_completed() < total {
                let next = rt.epochs_completed() + 1;
                rt.run_until(next).expect("victim epoch");
                println!("EPOCH {}", rt.epochs_completed());
                std::io::stdout().flush().ok();
                // A window for the harness's kill -9 to land between epochs.
                std::thread::sleep(std::time::Duration::from_millis(60));
            }
            print_final(&rt, &split);
        }
        "resume" => {
            let mut rt = Runtime::resume(cfg, &split.train).expect("resumable checkpoint");
            rt.run().expect("resumed run");
            print_final(&rt, &split);
        }
        other => {
            eprintln!("unknown mode {other:?}");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}
