//! Fault-tolerant training runtime for the GraphAug reproduction.
//!
//! Training runs die: preemptions, OOM kills, NaN explosions, corrupted
//! snapshots. This crate wraps [`graphaug_core::GraphAug`] in a
//! [`Runtime`] that survives all of them, built from three pillars:
//!
//! 1. **Checkpoint/restore** ([`checkpoint`], [`snapshot`]) — a versioned,
//!    checksummed, dependency-free binary snapshot of *everything* that
//!    shapes the loss trajectory (parameters, Adam moments and step counter,
//!    model RNG stream, sampler stream, epoch cursor, recovery bookkeeping),
//!    written atomically with two retained generations. Because the whole
//!    stack is bit-deterministic at any thread count, a resumed run is not
//!    merely "close": it reproduces the uninterrupted run **bit-identically**
//!    — and the tests assert exactly that.
//! 2. **Divergence guards** ([`guards`]) — every step's loss and global
//!    gradient norm are checked; non-finite updates are withheld inside
//!    `train_step_with` before they can poison the optimizer, and a rolling
//!    median spike detector flags silent blow-ups. A configurable
//!    [`RecoveryPolicy`] decides what happens next: skip the batch, clip and
//!    continue, or roll back to the last good state with learning-rate
//!    backoff.
//! 3. **Fault injection** ([`fault`]) — scripted NaN gradients, simulated
//!    kills between batches or epochs, and on-disk checkpoint damage
//!    (truncation, bit flips), so every recovery path above is exercised by
//!    deterministic tests instead of waiting for production to exercise it
//!    for you.
//!
//! # Quickstart
//!
//! ```
//! use graphaug_core::GraphAugConfig;
//! use graphaug_data::{generate, SyntheticConfig};
//! use graphaug_runtime::{Runtime, RuntimeConfig};
//!
//! let graph = generate(&SyntheticConfig::new(40, 30, 400).seed(1));
//! let dir = std::env::temp_dir().join("graphaug-quickstart-ckpt");
//! let cfg = RuntimeConfig::new(GraphAugConfig::fast_test().epochs(2))
//!     .checkpoint_dir(&dir);
//! let mut rt = Runtime::new(cfg.clone(), &graph).unwrap();
//! let report = rt.run().unwrap();
//! assert_eq!(report.epochs_completed, 2);
//! assert!(report.checkpoints_written >= 1);
//!
//! // After a crash: pick up from the newest valid checkpoint.
//! let resumed = Runtime::resume(cfg, &graph).unwrap();
//! assert_eq!(resumed.epochs_completed(), 2);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod checkpoint;
pub mod demo;
pub mod fault;
pub mod guards;
pub mod online;
pub mod runtime;
pub mod snapshot;

pub use checkpoint::{
    generation_path, inspect_dir, list_generations, load_latest_valid, newest_generation,
    CheckpointInfo, CheckpointSummary, Checkpointer, RunCompat, TrainState,
};
pub use demo::{demo_config, demo_split};
pub use fault::{corrupt_checkpoint, truncate_checkpoint, FaultPlan};
pub use guards::{RecoveryPolicy, SpikeDetector, StepVerdict};
pub use online::{FineTuner, OnlineError, RoundReport};
pub use runtime::{RecoveryAction, RecoveryEvent, RunReport, Runtime, RuntimeConfig, RuntimeError};
pub use snapshot::SnapshotError;
