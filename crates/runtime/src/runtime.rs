//! The fault-tolerant training driver: owns the epoch loop around
//! [`GraphAug::train_step_with`], checkpoints at epoch boundaries, judges
//! every step with the divergence guards, and applies the configured
//! [`RecoveryPolicy`] when training goes off the rails.

use std::path::{Path, PathBuf};

use graphaug_core::{GraphAug, GraphAugConfig, StepOptions};
use graphaug_graph::{GraphInvariantError, InteractionGraph, SamplerState, TripletSampler};
use graphaug_tensor::RestoreError;

use crate::checkpoint::{Checkpointer, RunCompat, TrainState};
use crate::fault::FaultPlan;
use crate::guards::{RecoveryPolicy, SpikeDetector, StepVerdict};
use crate::snapshot::SnapshotError;

/// Why the runtime could not start, restore, or continue.
#[derive(Debug)]
pub enum RuntimeError {
    /// The training graph failed its structural invariant check at startup.
    InvalidGraph(GraphInvariantError),
    /// A checkpoint could not be written or read.
    Snapshot(SnapshotError),
    /// A decoded checkpoint did not fit the model (shape mismatch).
    Restore(RestoreError),
    /// [`Runtime::resume`] found no valid checkpoint to resume from.
    NoCheckpoint(PathBuf),
    /// Rollback recovery exhausted its budget without stabilizing training.
    Unrecoverable {
        /// Rollbacks performed before giving up.
        rollbacks: u32,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::InvalidGraph(e) => write!(f, "training graph invalid: {e}"),
            RuntimeError::Snapshot(e) => write!(f, "checkpoint error: {e}"),
            RuntimeError::Restore(e) => write!(f, "checkpoint does not fit this model: {e}"),
            RuntimeError::NoCheckpoint(dir) => {
                write!(f, "no valid checkpoint under {}", dir.display())
            }
            RuntimeError::Unrecoverable { rollbacks } => {
                write!(
                    f,
                    "training diverged beyond recovery ({rollbacks} rollbacks)"
                )
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<SnapshotError> for RuntimeError {
    fn from(e: SnapshotError) -> Self {
        RuntimeError::Snapshot(e)
    }
}

impl From<RestoreError> for RuntimeError {
    fn from(e: RestoreError) -> Self {
        RuntimeError::Restore(e)
    }
}

/// Configuration of a [`Runtime`]: the model hyperparameters plus the
/// fault-tolerance knobs layered around them.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Model hyperparameters (epochs/steps_per_epoch drive the run length).
    pub model: GraphAugConfig,
    /// Where to persist checkpoints; `None` disables disk checkpointing
    /// (in-memory rollback still works).
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint every this many completed epochs.
    pub checkpoint_every: usize,
    /// What to do when a step diverges.
    pub policy: RecoveryPolicy,
    /// Rolling-window length of the loss-spike detector.
    pub spike_window: usize,
    /// Spike trip factor over the window median.
    pub spike_factor: f32,
    /// Rollbacks tolerated before declaring the run unrecoverable.
    pub max_rollbacks: u32,
    /// Scripted faults (tests and drills; [`FaultPlan::none`] in production).
    pub fault: FaultPlan,
}

impl RuntimeConfig {
    /// Defaults: checkpoint every epoch (once a directory is set), skip bad
    /// batches, an 8-step spike window tripping at 4× the median.
    pub fn new(model: GraphAugConfig) -> Self {
        RuntimeConfig {
            model,
            checkpoint_dir: None,
            checkpoint_every: 1,
            policy: RecoveryPolicy::SkipBatch,
            spike_window: 8,
            spike_factor: 4.0,
            max_rollbacks: 8,
            fault: FaultPlan::none(),
        }
    }

    /// Enables disk checkpointing under `dir`.
    pub fn checkpoint_dir(mut self, dir: &Path) -> Self {
        self.checkpoint_dir = Some(dir.to_path_buf());
        self
    }

    /// Sets the checkpoint cadence in epochs.
    pub fn checkpoint_every(mut self, epochs: usize) -> Self {
        assert!(epochs >= 1);
        self.checkpoint_every = epochs;
        self
    }

    /// Sets the divergence recovery policy.
    pub fn policy(mut self, policy: RecoveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Installs a scripted fault plan.
    pub fn fault(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// Sets the spike detector's window and trip factor.
    pub fn spike(mut self, window: usize, factor: f32) -> Self {
        self.spike_window = window;
        self.spike_factor = factor;
        self
    }
}

/// What the runtime did about one bad step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RecoveryAction {
    /// The batch was dropped and training moved on.
    SkippedBatch,
    /// The clipped update was kept (or, for a non-finite gradient, withheld
    /// by the in-step guard) and training moved on.
    ClippedContinue,
    /// The bad step was tolerated while the consecutive-bad counter climbs
    /// toward the rollback threshold.
    Tolerated,
    /// Training state was restored to the last good snapshot and the
    /// learning rate backed off to the reported scale.
    RolledBack {
        /// The learning-rate multiplier in force after the backoff.
        lr_scale: f32,
    },
}

/// One recovery intervention, for the run report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoveryEvent {
    /// Monotonic attempt index of the offending step.
    pub attempt: u64,
    /// Epoch the step belonged to.
    pub epoch: u64,
    /// What the guards saw.
    pub verdict: StepVerdict,
    /// What the policy did about it.
    pub action: RecoveryAction,
}

/// Outcome of one [`Runtime::run`] call.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Loss of every *applied* step executed by this call, in order.
    pub step_losses: Vec<f32>,
    /// Total epochs completed across the whole run (including epochs
    /// completed before a resume).
    pub epochs_completed: u64,
    /// Every recovery intervention, in order.
    pub recoveries: Vec<RecoveryEvent>,
    /// True when a scripted fault halted the run early (simulated crash).
    pub halted_by_fault: bool,
    /// Checkpoints written by this call.
    pub checkpoints_written: usize,
}

/// Fault-tolerant training driver around a [`GraphAug`] model.
pub struct Runtime {
    cfg: RuntimeConfig,
    model: GraphAug,
    graph: InteractionGraph,
    checkpointer: Option<Checkpointer>,
    detector: SpikeDetector,
    sampler_state: SamplerState,
    epoch: u64,
    step_in_epoch: u64,
    lr_scale: f32,
    consecutive_bad: u32,
    attempt: u64,
    rollbacks: u32,
    log_offset: u64,
    finetunes: u64,
    last_good: TrainState,
}

impl Runtime {
    /// Builds a fresh runtime: validates the training graph, constructs the
    /// model, and captures the initial state as the first rollback target.
    pub fn new(cfg: RuntimeConfig, graph: &InteractionGraph) -> Result<Runtime, RuntimeError> {
        graph.validate().map_err(RuntimeError::InvalidGraph)?;
        let model = GraphAug::new(cfg.model.clone(), graph);
        // The sampler seed offset mirrors `GraphAug::fit_with`, so an
        // unsupervised `fit` and a `Runtime` run with identical settings
        // walk identical batch streams.
        let sampler_state = TripletSampler::new(graph, cfg.model.seed.wrapping_add(101)).state();
        let checkpointer = match &cfg.checkpoint_dir {
            Some(dir) => Some(Checkpointer::new(dir)?),
            None => None,
        };
        let detector = SpikeDetector::new(cfg.spike_window, cfg.spike_factor);
        let last_good = TrainState {
            compat: RunCompat {
                n_users: graph.n_users() as u64,
                n_items: graph.n_items() as u64,
                n_edges: graph.n_interactions() as u64,
                seed: cfg.model.seed,
                embed_dim: cfg.model.embed_dim as u64,
            },
            epoch: 0,
            lr_scale: 1.0,
            consecutive_bad: 0,
            attempt: 0,
            step_in_epoch: 0,
            log_offset: 0,
            finetunes: 0,
            loss_window: Vec::new(),
            model: model.training_state(),
            sampler: sampler_state,
        };
        Ok(Runtime {
            cfg,
            model,
            graph: graph.clone(),
            checkpointer,
            detector,
            sampler_state,
            epoch: 0,
            step_in_epoch: 0,
            lr_scale: 1.0,
            consecutive_bad: 0,
            attempt: 0,
            rollbacks: 0,
            log_offset: 0,
            finetunes: 0,
            last_good,
        })
    }

    /// Builds a runtime and restores the newest valid checkpoint under the
    /// configured directory. Fails with [`RuntimeError::NoCheckpoint`] when
    /// none decodes cleanly — corrupt generations are silently walked past
    /// as long as an older valid one exists.
    pub fn resume(cfg: RuntimeConfig, graph: &InteractionGraph) -> Result<Runtime, RuntimeError> {
        let dir = cfg
            .checkpoint_dir
            .clone()
            .expect("Runtime::resume requires a checkpoint_dir");
        let mut rt = Runtime::new(cfg, graph)?;
        let Some((_, state)) = rt
            .checkpointer
            .as_ref()
            .expect("checkpointer exists when dir is set")
            .latest_valid()
        else {
            return Err(RuntimeError::NoCheckpoint(dir));
        };
        rt.restore_state(&state)?;
        Ok(rt)
    }

    /// [`Runtime::resume`] when a valid checkpoint exists, otherwise a fresh
    /// run — the idiom for a crash-looping supervisor.
    pub fn resume_or_new(
        cfg: RuntimeConfig,
        graph: &InteractionGraph,
    ) -> Result<Runtime, RuntimeError> {
        match Runtime::resume(cfg.clone(), graph) {
            Ok(rt) => Ok(rt),
            Err(RuntimeError::NoCheckpoint(_)) => Runtime::new(cfg, graph),
            Err(e) => Err(e),
        }
    }

    fn compat(&self) -> RunCompat {
        RunCompat {
            n_users: self.graph.n_users() as u64,
            n_items: self.graph.n_items() as u64,
            n_edges: self.graph.n_interactions() as u64,
            seed: self.cfg.model.seed,
            embed_dim: self.cfg.model.embed_dim as u64,
        }
    }

    pub(crate) fn current_state(&self) -> TrainState {
        TrainState {
            compat: self.compat(),
            epoch: self.epoch,
            lr_scale: self.lr_scale,
            consecutive_bad: self.consecutive_bad,
            attempt: self.attempt,
            step_in_epoch: self.step_in_epoch,
            log_offset: self.log_offset,
            finetunes: self.finetunes,
            loss_window: self.detector.window().to_vec(),
            model: self.model.training_state(),
            sampler: self.sampler_state,
        }
    }

    /// Restores a decoded checkpoint into this runtime (compat-checked).
    fn restore_state(&mut self, state: &TrainState) -> Result<(), RuntimeError> {
        state.compat.check(&self.compat())?;
        self.model.restore_training_state(&state.model)?;
        self.sampler_state = state.sampler;
        self.epoch = state.epoch;
        self.step_in_epoch = state.step_in_epoch;
        self.lr_scale = state.lr_scale;
        self.consecutive_bad = state.consecutive_bad;
        self.attempt = state.attempt;
        self.log_offset = state.log_offset;
        self.finetunes = state.finetunes;
        self.detector.restore(&state.loss_window);
        self.last_good = state.clone();
        Ok(())
    }

    /// The model being trained.
    pub fn model(&self) -> &GraphAug {
        &self.model
    }

    /// Consumes the runtime, yielding the trained model.
    pub fn into_model(self) -> GraphAug {
        self.model
    }

    /// Epochs completed so far.
    pub fn epochs_completed(&self) -> u64 {
        self.epoch
    }

    /// Steps executed inside the current (incomplete) epoch — `0` at every
    /// epoch boundary, non-zero only after a budgeted [`Runtime::run_steps`]
    /// stopped mid-epoch.
    pub fn step_in_epoch(&self) -> u64 {
        self.step_in_epoch
    }

    /// The learning-rate multiplier currently in force.
    pub fn lr_scale(&self) -> f32 {
        self.lr_scale
    }

    /// Interaction-log watermark this model state was trained through.
    pub fn log_offset(&self) -> u64 {
        self.log_offset
    }

    /// Warm-start fine-tune rounds applied so far.
    pub fn finetunes(&self) -> u64 {
        self.finetunes
    }

    /// Adopts a delta-grown training graph without losing the training
    /// trajectory: the model is reconstructed over `graph` and the current
    /// parameters, optimizer moments, and RNG streams are restored into it
    /// (embedding shapes depend only on the fixed user/item universe, so a
    /// graph with extra *edges* always fits). `log_offset` records the
    /// interaction-log watermark the graph corresponds to; it is carried
    /// in every subsequent checkpoint so a consumer can re-derive the same
    /// graph by replaying the log prefix. The rollback target is refreshed
    /// because states captured against the old graph no longer pass the
    /// compat check.
    pub fn absorb_deltas(
        &mut self,
        graph: &InteractionGraph,
        log_offset: u64,
    ) -> Result<(), RuntimeError> {
        graph.validate().map_err(RuntimeError::InvalidGraph)?;
        let state = self.model.training_state();
        self.model = GraphAug::for_inference(self.cfg.model.clone(), graph, &state)?;
        self.graph = graph.clone();
        self.log_offset = log_offset;
        self.last_good = self.current_state();
        Ok(())
    }

    /// One warm-start fine-tune round: trains exactly one additional epoch
    /// of `cfg.model.steps_per_epoch` steps (continuing the persisted
    /// sampler and RNG streams), then refreshes embeddings and publishes a
    /// checkpoint — regardless of the configured epoch total or cadence.
    pub fn fine_tune_round(&mut self) -> Result<RunReport, RuntimeError> {
        self.finetunes += 1;
        let target = self.epoch + 1;
        self.run_loop(target, None)
    }

    /// Runs (or continues) training to `cfg.model.epochs` epochs, applying
    /// guards and recovery throughout. Returns the report for *this* call;
    /// a run halted by a scripted fault can be continued by calling `run`
    /// again or by resuming from disk.
    pub fn run(&mut self) -> Result<RunReport, RuntimeError> {
        self.run_until(self.cfg.model.epochs as u64)
    }

    /// Runs until `target` epochs are completed (capped at the configured
    /// total). Lets a driver interleave training with its own work — the
    /// kill/resume harness uses this to report progress between epochs.
    pub fn run_until(&mut self, target: u64) -> Result<RunReport, RuntimeError> {
        let total = (self.cfg.model.epochs as u64).min(target);
        self.run_loop(total, None)
    }

    /// Runs at most `max_steps` mini-batch steps toward the configured
    /// epoch total, stopping *mid-epoch* when the budget runs out: the
    /// sampler stream and step cursor are saved so the next call (or a
    /// checkpoint cut at the stop point) resumes the run bit-identically.
    /// The trajectory — batches, losses, checkpoints at epoch boundaries —
    /// is byte-identical to one uninterrupted [`Runtime::run`], however the
    /// total is sliced into budgets.
    pub fn run_steps(&mut self, max_steps: u64) -> Result<RunReport, RuntimeError> {
        self.run_loop(self.cfg.model.epochs as u64, Some(max_steps))
    }

    fn run_loop(
        &mut self,
        total_epochs: u64,
        step_budget: Option<u64>,
    ) -> Result<RunReport, RuntimeError> {
        let mut report = RunReport::default();
        let graph = self.graph.clone();
        let steps_per_epoch = self.cfg.model.steps_per_epoch as u64;
        let mut consumed = 0u64;

        'epochs: while self.epoch < total_epochs {
            let mut sampler = TripletSampler::from_state(&graph, self.sampler_state);
            while self.step_in_epoch < steps_per_epoch {
                if step_budget.is_some_and(|budget| consumed >= budget) {
                    // Budget exhausted mid-epoch: persist the sampler
                    // stream at the exact step boundary so the next call
                    // picks up the identical batch sequence.
                    self.sampler_state = sampler.state();
                    report.epochs_completed = self.epoch;
                    return Ok(report);
                }
                if self.cfg.fault.should_halt_before(self.attempt) {
                    // A scripted crash: like the real SIGKILL it models,
                    // in-epoch progress is abandoned — a continuation
                    // replays the epoch from the last saved stream state.
                    self.step_in_epoch = 0;
                    report.halted_by_fault = true;
                    report.epochs_completed = self.epoch;
                    return Ok(report);
                }
                let opts = StepOptions {
                    clip_norm: match self.cfg.policy {
                        RecoveryPolicy::ClipAndContinue { max_norm } => Some(max_norm),
                        _ => None,
                    },
                    lr_scale: self.lr_scale,
                    inject_nan_grad: self.cfg.fault.inject_nan(self.attempt),
                };
                let attempt = self.attempt;
                self.attempt += 1;
                let stats = self.model.train_step_with(&mut sampler, &opts);
                let verdict = self.detector.observe(&stats);
                if verdict == StepVerdict::Healthy {
                    self.consecutive_bad = 0;
                    report.step_losses.push(stats.loss);
                    self.step_in_epoch += 1;
                    consumed += 1;
                    continue;
                }
                self.consecutive_bad += 1;
                let event = |action| RecoveryEvent {
                    attempt,
                    epoch: self.epoch,
                    verdict,
                    action,
                };
                match self.cfg.policy {
                    RecoveryPolicy::SkipBatch => {
                        report.recoveries.push(event(RecoveryAction::SkippedBatch));
                        self.step_in_epoch += 1;
                        consumed += 1;
                    }
                    RecoveryPolicy::ClipAndContinue { .. } => {
                        report
                            .recoveries
                            .push(event(RecoveryAction::ClippedContinue));
                        if verdict == StepVerdict::Spike {
                            // The clipped update is bounded — admit the loss
                            // as progress rather than dropping the step.
                            report.step_losses.push(stats.loss);
                        }
                        self.step_in_epoch += 1;
                        consumed += 1;
                    }
                    RecoveryPolicy::RollbackWithBackoff { after, lr_factor } => {
                        if self.consecutive_bad < after {
                            report.recoveries.push(event(RecoveryAction::Tolerated));
                            self.step_in_epoch += 1;
                            consumed += 1;
                            continue;
                        }
                        self.rollbacks += 1;
                        if self.rollbacks > self.cfg.max_rollbacks {
                            return Err(RuntimeError::Unrecoverable {
                                rollbacks: self.rollbacks - 1,
                            });
                        }
                        let target = self.last_good.clone();
                        let backed_off = (self.lr_scale * lr_factor).max(f32::MIN_POSITIVE);
                        // Keep the attempt counter monotonic across the
                        // restore: it keys fault injection, and rewinding it
                        // would refire the very fault being recovered from.
                        let keep_attempt = self.attempt;
                        self.restore_state(&target)?;
                        self.attempt = keep_attempt;
                        self.lr_scale = backed_off;
                        self.consecutive_bad = 0;
                        report.recoveries.push(RecoveryEvent {
                            attempt,
                            epoch: target.epoch,
                            verdict,
                            action: RecoveryAction::RolledBack {
                                lr_scale: backed_off,
                            },
                        });
                        // Restart the (restored) epoch with a fresh sampler
                        // from the restored stream state.
                        continue 'epochs;
                    }
                }
            }

            self.sampler_state = sampler.state();
            self.step_in_epoch = 0;
            self.epoch += 1;
            self.model.refresh_embeddings();

            let due = self.epoch.is_multiple_of(self.cfg.checkpoint_every as u64)
                || self.epoch == total_epochs;
            let state = self.current_state();
            if due {
                if let Some(ckpt) = self.checkpointer.as_mut() {
                    ckpt.write(&state)?;
                    report.checkpoints_written += 1;
                }
            }
            self.last_good = state;

            if self.cfg.fault.should_halt_after_epoch(self.epoch - 1) {
                report.halted_by_fault = true;
                report.epochs_completed = self.epoch;
                return Ok(report);
            }
        }

        if self.epoch >= self.cfg.model.epochs as u64 {
            self.model.mark_trained();
        }
        report.epochs_completed = self.epoch;
        Ok(report)
    }
}
