//! Training-state serialization and the on-disk checkpoint store.
//!
//! A [`TrainState`] is everything needed to resume a [`crate::Runtime`] run
//! with a bit-identical loss trajectory: a compatibility header tying the
//! checkpoint to its run, the epoch cursor and recovery bookkeeping, the
//! model's [`ModelState`] (parameters + Adam moments + RNG stream + step
//! counter), and the triplet sampler's [`SamplerState`].
//!
//! The [`Checkpointer`] writes atomically (temp file + rename, never
//! overwriting in place), keeps the last two generations, and on load walks
//! generations newest-first, falling back past any corrupt file — a torn
//! write of generation N must never cost you generation N−1.

use std::fs;
use std::path::{Path, PathBuf};

use graphaug_core::ModelState;
use graphaug_graph::SamplerState;
use graphaug_tensor::{Mat, ParamState, ParamStoreState};

use crate::snapshot::{frame, unframe, ByteReader, ByteWriter, SnapshotError};

/// Identity of a training run. A checkpoint written for one run must not be
/// restored into another: the graph shape decides every parameter shape, and
/// the seed decides every RNG stream, so a mismatch can only produce silent
/// nonsense.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunCompat {
    /// Users in the training graph.
    pub n_users: u64,
    /// Items in the training graph.
    pub n_items: u64,
    /// Interactions in the training graph.
    pub n_edges: u64,
    /// The model's RNG seed.
    pub seed: u64,
    /// Embedding dimensionality.
    pub embed_dim: u64,
}

impl RunCompat {
    /// Checks this header against the run attempting to restore it.
    pub fn check(&self, other: &RunCompat) -> Result<(), SnapshotError> {
        if self == other {
            return Ok(());
        }
        Err(SnapshotError::Incompatible(format!(
            "checkpoint {self:?} vs run {other:?}"
        )))
    }
}

/// Complete resumable state of a training run.
#[derive(Clone, Debug)]
pub struct TrainState {
    /// Which run this checkpoint belongs to.
    pub compat: RunCompat,
    /// Epochs fully completed (the next epoch to execute).
    pub epoch: u64,
    /// Current learning-rate multiplier (shrunk by rollback backoff).
    pub lr_scale: f32,
    /// Consecutive diverged steps seen so far (rollback trigger counter).
    pub consecutive_bad: u32,
    /// Monotonic step-attempt counter (drives fault injection; unlike the
    /// model's `steps_taken` it also counts withheld/rolled-back steps and
    /// never rewinds).
    pub attempt: u64,
    /// Steps already executed inside the *current* epoch — `0` at every
    /// epoch boundary. Non-zero only for checkpoints cut mid-epoch by a
    /// step-budgeted driver ([`crate::Runtime::run_steps`]), which resume
    /// at exactly this step with the saved sampler stream.
    pub step_in_epoch: u64,
    /// Interaction-log watermark: this model state was trained on the base
    /// graph plus log records `[0, log_offset)`. `0` for offline runs.
    pub log_offset: u64,
    /// Warm-start fine-tune rounds applied on top of the base run.
    pub finetunes: u64,
    /// Rolling window of recent finite losses (spike detection context).
    pub loss_window: Vec<f32>,
    /// Model parameters, Adam moments, RNG stream, step counter.
    pub model: ModelState,
    /// Triplet sampler stream state.
    pub sampler: SamplerState,
}

fn put_mat(w: &mut ByteWriter, m: &Mat) {
    w.put_u64(m.rows() as u64);
    w.put_u64(m.cols() as u64);
    for &x in m.as_slice() {
        w.put_f32(x);
    }
}

fn get_mat(r: &mut ByteReader<'_>) -> Result<Mat, SnapshotError> {
    let rows = r.get_u64()? as usize;
    let cols = r.get_u64()? as usize;
    let n = rows
        .checked_mul(cols)
        .ok_or_else(|| SnapshotError::Malformed(format!("matrix shape {rows}x{cols} overflows")))?;
    if r.remaining() < n.saturating_mul(4) {
        return Err(SnapshotError::Malformed(format!(
            "matrix claims {rows}x{cols} but only {} bytes remain",
            r.remaining()
        )));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(r.get_f32()?);
    }
    Ok(Mat::from_vec(rows, cols, data))
}

impl TrainState {
    /// Encodes into a framed, checksummed snapshot (see [`crate::snapshot`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.compat.n_users);
        w.put_u64(self.compat.n_items);
        w.put_u64(self.compat.n_edges);
        w.put_u64(self.compat.seed);
        w.put_u64(self.compat.embed_dim);
        w.put_u64(self.epoch);
        w.put_f32(self.lr_scale);
        w.put_u32(self.consecutive_bad);
        w.put_u64(self.attempt);
        w.put_u64(self.step_in_epoch);
        w.put_u64(self.log_offset);
        w.put_u64(self.finetunes);
        w.put_f32_slice(&self.loss_window);
        // Model.
        w.put_u64(self.model.params.t);
        w.put_u64(self.model.params.slots.len() as u64);
        for slot in &self.model.params.slots {
            put_mat(&mut w, &slot.value);
            put_mat(&mut w, &slot.m);
            put_mat(&mut w, &slot.v);
        }
        w.put_rng(self.model.rng);
        w.put_u64(self.model.steps_taken);
        w.put_u8(self.model.trained as u8);
        // Sampler.
        w.put_u64(self.sampler.seed);
        w.put_u64(self.sampler.next_stream);
        w.put_rng(self.sampler.rng);
        frame(&w.into_bytes())
    }

    /// Decodes a framed snapshot, validating the checksum and structure.
    pub fn from_bytes(bytes: &[u8]) -> Result<TrainState, SnapshotError> {
        let payload = unframe(bytes)?;
        let mut r = ByteReader::new(payload);
        let compat = RunCompat {
            n_users: r.get_u64()?,
            n_items: r.get_u64()?,
            n_edges: r.get_u64()?,
            seed: r.get_u64()?,
            embed_dim: r.get_u64()?,
        };
        let epoch = r.get_u64()?;
        let lr_scale = r.get_f32()?;
        let consecutive_bad = r.get_u32()?;
        let attempt = r.get_u64()?;
        let step_in_epoch = r.get_u64()?;
        let log_offset = r.get_u64()?;
        let finetunes = r.get_u64()?;
        let loss_window = r.get_f32_vec()?;
        let t = r.get_u64()?;
        let n_slots = r.get_u64()? as usize;
        if n_slots > 1 << 20 {
            return Err(SnapshotError::Malformed(format!(
                "implausible slot count {n_slots}"
            )));
        }
        let mut slots = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            let value = get_mat(&mut r)?;
            let m = get_mat(&mut r)?;
            let v = get_mat(&mut r)?;
            slots.push(ParamState { value, m, v });
        }
        let model = ModelState {
            params: ParamStoreState { t, slots },
            rng: r.get_rng()?,
            steps_taken: r.get_u64()?,
            trained: r.get_u8()? != 0,
        };
        let sampler = SamplerState {
            seed: r.get_u64()?,
            next_stream: r.get_u64()?,
            rng: r.get_rng()?,
        };
        r.finish()?;
        Ok(TrainState {
            compat,
            epoch,
            lr_scale,
            consecutive_bad,
            attempt,
            step_in_epoch,
            log_offset,
            finetunes,
            loss_window,
            model,
            sampler,
        })
    }

    /// A content fingerprint: the FNV-1a-64 checksum the frame header
    /// would carry for this state — two states fingerprint equal iff
    /// their checkpoint files are byte-identical. The hot-reload watcher
    /// compares fingerprints to skip rebuilding (re-encoding,
    /// re-quantizing, re-gating) tables for a generation whose bytes did
    /// not change.
    ///
    /// This re-encodes the whole state to compute the checksum — O(state
    /// size). A caller holding the encoded frame (anything that just read
    /// a checkpoint file) should use [`frame_fingerprint`] or
    /// [`load_latest_valid_with_fingerprint`] instead, which read the
    /// same value straight off the header.
    pub fn fingerprint(&self) -> u64 {
        let framed = self.to_bytes();
        frame_fingerprint(&framed).expect("frame header")
    }
}

/// Reads the fingerprint (the frame checksum, bytes `[20..28]` of the
/// header) straight off an encoded snapshot without decoding — the cheap
/// counterpart of [`TrainState::fingerprint`]. Returns `None` for a slice
/// too short to carry a frame header. The value is only meaningful for
/// bytes that decode cleanly: a state decoded from these bytes
/// fingerprints equal to this header field by construction.
pub fn frame_fingerprint(bytes: &[u8]) -> Option<u64> {
    bytes
        .get(20..28)
        .map(|b| u64::from_le_bytes(b.try_into().expect("eight bytes")))
}

/// Generational checkpoint store over one directory.
///
/// Files are named `ckpt-<generation>.bin`; writes go through
/// `ckpt-<generation>.bin.tmp` and a rename so a crash mid-write leaves at
/// worst a stale `.tmp` (swept on the next startup) and never a truncated
/// live checkpoint under the real name.
pub struct Checkpointer {
    dir: PathBuf,
    next_gen: u64,
    /// How many generations to retain (at least 1; default 2 so one corrupt
    /// write can always fall back).
    keep: usize,
}

impl Checkpointer {
    /// Opens (creating if needed) a checkpoint directory, sweeps stray
    /// `.tmp` files from interrupted writes, and positions the next
    /// generation after the newest existing checkpoint.
    pub fn new(dir: &Path) -> Result<Checkpointer, SnapshotError> {
        fs::create_dir_all(dir).map_err(|e| SnapshotError::Io(e.to_string()))?;
        let mut max_gen = None;
        for entry in fs::read_dir(dir).map_err(|e| SnapshotError::Io(e.to_string()))? {
            let entry = entry.map_err(|e| SnapshotError::Io(e.to_string()))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".tmp") {
                // Torn write from a killed process: unfinished by definition.
                let _ = fs::remove_file(entry.path());
                continue;
            }
            if let Some(g) = parse_generation(&name) {
                max_gen = Some(max_gen.map_or(g, |m: u64| m.max(g)));
            }
        }
        Ok(Checkpointer {
            dir: dir.to_path_buf(),
            next_gen: max_gen.map_or(0, |g| g + 1),
            keep: 2,
        })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of a specific generation's checkpoint file.
    pub fn path_for(&self, generation: u64) -> PathBuf {
        generation_path(&self.dir, generation)
    }

    /// Atomically writes a checkpoint as the next generation and prunes
    /// generations beyond the retention count. Returns the live path.
    pub fn write(&mut self, state: &TrainState) -> Result<PathBuf, SnapshotError> {
        let generation = self.next_gen;
        let live = self.path_for(generation);
        let tmp = live.with_extension("bin.tmp");
        fs::write(&tmp, state.to_bytes()).map_err(|e| SnapshotError::Io(e.to_string()))?;
        fs::rename(&tmp, &live).map_err(|e| SnapshotError::Io(e.to_string()))?;
        self.next_gen += 1;
        self.prune();
        Ok(live)
    }

    fn prune(&self) {
        let mut gens = self.generations();
        gens.sort_unstable_by(|a, b| b.cmp(a));
        for &g in gens.iter().skip(self.keep) {
            let _ = fs::remove_file(self.path_for(g));
        }
    }

    /// Existing checkpoint generations, sorted ascending.
    pub fn generations(&self) -> Vec<u64> {
        list_generations(&self.dir)
    }

    /// Loads the newest checkpoint that decodes cleanly, walking past any
    /// corrupt generations. Returns the generation alongside the state, or
    /// `None` when no valid checkpoint exists.
    pub fn latest_valid(&self) -> Option<(u64, TrainState)> {
        load_latest_valid(&self.dir)
    }

    /// Loads one checkpoint file strictly — every corruption mode surfaces
    /// as its typed [`SnapshotError`].
    pub fn load(path: &Path) -> Result<TrainState, SnapshotError> {
        let bytes = fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        TrainState::from_bytes(&bytes)
    }
}

fn parse_generation(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?
        .strip_suffix(".bin")?
        .parse()
        .ok()
}

// ---------------------------------------------------------------------------
// Read-only checkpoint access
// ---------------------------------------------------------------------------
//
// The [`Checkpointer`] is the *writer's* handle: opening one creates the
// directory and sweeps stray `.tmp` files — exactly wrong for a consumer
// (the serving engine, an inspector) watching a directory that a live
// trainer may be writing into at the same moment. These free functions
// never create, sweep, or delete anything.

/// Path of a specific generation's checkpoint file under `dir`.
pub fn generation_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("ckpt-{generation:08}.bin"))
}

/// Checkpoint generations present in `dir`, sorted ascending. Purely a
/// directory listing — no file contents are touched, so this is cheap
/// enough for a reload watcher to poll.
pub fn list_generations(dir: &Path) -> Vec<u64> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut gens: Vec<u64> = entries
        .flatten()
        .filter_map(|e| parse_generation(&e.file_name().to_string_lossy()))
        .collect();
    gens.sort_unstable();
    gens
}

/// Newest generation number present in `dir` (validity not checked) —
/// the cheap poll a hot-reload watcher uses to decide whether a full
/// decode is worth attempting.
pub fn newest_generation(dir: &Path) -> Option<u64> {
    list_generations(dir).into_iter().next_back()
}

/// Loads the newest checkpoint in `dir` that decodes cleanly, walking past
/// corrupt generations — the read-only counterpart of
/// [`Checkpointer::latest_valid`].
pub fn load_latest_valid(dir: &Path) -> Option<(u64, TrainState)> {
    load_latest_valid_with_fingerprint(dir).map(|(g, state, _)| (g, state))
}

/// [`load_latest_valid`], additionally returning the checkpoint's
/// fingerprint read off the validated frame header — free, where
/// [`TrainState::fingerprint`] would re-encode the whole state. This is
/// the loader for anything that compares or reports fingerprints (the
/// serving hot-reload watcher, `ingestd`'s `FINETUNE` lines).
pub fn load_latest_valid_with_fingerprint(dir: &Path) -> Option<(u64, TrainState, u64)> {
    for g in list_generations(dir).into_iter().rev() {
        if let Ok(bytes) = fs::read(generation_path(dir, g)) {
            if let Ok(state) = TrainState::from_bytes(&bytes) {
                let fingerprint = frame_fingerprint(&bytes).expect("decoded frame has a header");
                return Some((g, state, fingerprint));
            }
        }
    }
    None
}

/// Decoded header facts of one valid checkpoint (see [`inspect_dir`]).
#[derive(Clone, Debug)]
pub struct CheckpointSummary {
    /// Snapshot format version from the frame header.
    pub format_version: u32,
    /// Which run the checkpoint belongs to.
    pub compat: RunCompat,
    /// Epochs completed when it was written.
    pub epoch: u64,
    /// Optimization steps taken by the model when it was written.
    pub steps_taken: u64,
}

/// One checkpoint file's inspection record.
#[derive(Debug)]
pub struct CheckpointInfo {
    /// Generation parsed from the file name.
    pub generation: u64,
    /// Full path of the file.
    pub path: PathBuf,
    /// File size in bytes (0 when unreadable).
    pub bytes: u64,
    /// Decoded summary, or the typed error explaining why the file is
    /// unusable (bad magic, truncation, checksum mismatch, …).
    pub status: Result<CheckpointSummary, SnapshotError>,
}

/// Inspects every checkpoint generation in `dir`, newest first — the
/// debugging view behind the `ckpt_inspect` binary. Each file is fully
/// decoded, so checksum and structural problems surface as their typed
/// [`SnapshotError`] instead of being silently skipped.
pub fn inspect_dir(dir: &Path) -> Vec<CheckpointInfo> {
    let mut out = Vec::new();
    for g in list_generations(dir).into_iter().rev() {
        let path = generation_path(dir, g);
        let (bytes, status) = match fs::read(&path) {
            Ok(raw) => {
                let status = TrainState::from_bytes(&raw).map(|state| CheckpointSummary {
                    // `from_bytes` only accepts the current version, so the
                    // header bytes it validated are authoritative here.
                    format_version: u32::from_le_bytes(
                        raw[8..12].try_into().expect("frame validated"),
                    ),
                    compat: state.compat,
                    epoch: state.epoch,
                    steps_taken: state.model.steps_taken,
                });
                (raw.len() as u64, status)
            }
            Err(e) => (0, Err(SnapshotError::Io(e.to_string()))),
        };
        out.push(CheckpointInfo {
            generation: g,
            path,
            bytes,
            status,
        });
    }
    out
}
