//! Divergence guards: per-step verdicts over loss/gradient health and the
//! recovery policies the runtime applies when a step goes bad.

use graphaug_core::StepStats;

/// What the runtime does when a step diverges (non-finite loss or gradient,
/// or a loss spike flagged by the [`SpikeDetector`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RecoveryPolicy {
    /// Drop the offending batch on the floor and move on. The guard inside
    /// `train_step_with` already withheld the poisoned update, so "skip" is
    /// purely bookkeeping — the cheapest possible recovery.
    SkipBatch,
    /// Clip the global gradient norm to `max_norm` on every step. Spikes
    /// shrink to bounded updates instead of being dropped; non-finite
    /// gradients are still withheld (clipping NaN is still NaN).
    ClipAndContinue {
        /// Global L2 norm ceiling applied before the Adam update.
        max_norm: f32,
    },
    /// After `after` consecutive bad steps, restore the last good state
    /// (in-memory or from the newest valid checkpoint) and multiply the
    /// learning rate by `lr_factor` — the classic divergence escape hatch.
    RollbackWithBackoff {
        /// Consecutive bad steps tolerated before rolling back.
        after: u32,
        /// Learning-rate multiplier applied at each rollback (in `(0, 1)`).
        lr_factor: f32,
    },
}

/// Health verdict for one optimization step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepVerdict {
    /// Finite loss and gradients, no spike.
    Healthy,
    /// The loss jumped far above the recent rolling median.
    Spike,
    /// Non-finite loss or gradient entries — the update was withheld.
    Diverged,
}

/// Rolling-window loss-spike detector. A step whose (finite) loss exceeds
/// `spike_factor ×` the median of the last `window` finite losses is flagged
/// as a [`StepVerdict::Spike`]; non-finite losses are never admitted to the
/// window. The median (not the mean) keeps a single earlier spike from
/// masking the next one.
#[derive(Clone, Debug)]
pub struct SpikeDetector {
    window: usize,
    spike_factor: f32,
    recent: Vec<f32>,
}

impl SpikeDetector {
    /// A detector over the last `window` losses with the given trip factor.
    pub fn new(window: usize, spike_factor: f32) -> Self {
        assert!(window >= 1, "spike window must hold at least one loss");
        assert!(spike_factor > 1.0, "spike factor must exceed 1");
        SpikeDetector {
            window,
            spike_factor,
            recent: Vec::with_capacity(window),
        }
    }

    /// Restores the window contents from a checkpoint.
    pub fn restore(&mut self, losses: &[f32]) {
        self.recent = losses.iter().copied().filter(|l| l.is_finite()).collect();
        let excess = self.recent.len().saturating_sub(self.window);
        self.recent.drain(..excess);
    }

    /// Current window contents (for checkpointing).
    pub fn window(&self) -> &[f32] {
        &self.recent
    }

    /// Judges one step and, when the loss is healthy, admits it to the
    /// window. Spiking losses are *not* admitted: a divergence plateau
    /// should keep tripping the detector, not re-baseline it.
    pub fn observe(&mut self, stats: &StepStats) -> StepVerdict {
        if !stats.update_applied() {
            return StepVerdict::Diverged;
        }
        let spike =
            self.recent.len() == self.window && stats.loss > self.spike_factor * self.median();
        if spike {
            return StepVerdict::Spike;
        }
        if self.recent.len() == self.window {
            self.recent.remove(0);
        }
        self.recent.push(stats.loss);
        StepVerdict::Healthy
    }

    fn median(&self) -> f32 {
        let mut sorted = self.recent.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted[sorted.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(loss: f32) -> StepStats {
        StepStats {
            loss,
            grad_norm: 1.0,
            ..Default::default()
        }
    }

    fn bad_stats() -> StepStats {
        StepStats {
            loss: f32::NAN,
            bad_grads: 3,
            ..Default::default()
        }
    }

    #[test]
    fn steady_losses_are_healthy() {
        let mut d = SpikeDetector::new(4, 3.0);
        for l in [1.0, 1.1, 0.9, 1.0, 1.05, 0.95] {
            assert_eq!(d.observe(&stats(l)), StepVerdict::Healthy);
        }
    }

    #[test]
    fn a_jump_over_the_median_trips_the_detector() {
        let mut d = SpikeDetector::new(4, 3.0);
        for l in [1.0, 1.0, 1.0, 1.0] {
            d.observe(&stats(l));
        }
        assert_eq!(d.observe(&stats(10.0)), StepVerdict::Spike);
        // The spike was not admitted: a second one still trips.
        assert_eq!(d.observe(&stats(10.0)), StepVerdict::Spike);
        // Normal losses keep flowing.
        assert_eq!(d.observe(&stats(1.1)), StepVerdict::Healthy);
    }

    #[test]
    fn no_spike_before_the_window_fills() {
        let mut d = SpikeDetector::new(8, 2.0);
        assert_eq!(d.observe(&stats(1.0)), StepVerdict::Healthy);
        // Early training losses legitimately swing; don't trip on them.
        assert_eq!(d.observe(&stats(50.0)), StepVerdict::Healthy);
    }

    #[test]
    fn non_finite_steps_are_diverged_and_not_admitted() {
        let mut d = SpikeDetector::new(2, 3.0);
        d.observe(&stats(1.0));
        assert_eq!(d.observe(&bad_stats()), StepVerdict::Diverged);
        assert_eq!(d.window(), &[1.0]);
    }

    #[test]
    fn restore_round_trips_and_truncates() {
        let mut d = SpikeDetector::new(3, 3.0);
        d.restore(&[1.0, 2.0, f32::NAN, 3.0, 4.0]);
        // NaN filtered, then truncated to the newest `window` entries.
        assert_eq!(d.window(), &[2.0, 3.0, 4.0]);
    }
}
