//! Integration tests for the fault-tolerant runtime: bit-identical
//! checkpoint/resume at multiple thread counts, all three recovery
//! policies surviving injected faults without a process abort, and
//! checkpoint robustness against on-disk damage.

use std::fs;
use std::path::PathBuf;

use graphaug_core::GraphAugConfig;
use graphaug_data::{generate, SyntheticConfig};
use graphaug_eval::Recommender;
use graphaug_graph::InteractionGraph;
use graphaug_runtime::{
    corrupt_checkpoint, truncate_checkpoint, Checkpointer, FaultPlan, RecoveryAction,
    RecoveryPolicy, Runtime, RuntimeConfig, RuntimeError, SnapshotError, StepVerdict,
};

fn toy_graph() -> InteractionGraph {
    generate(&SyntheticConfig::new(70, 55, 800).clusters(4).seed(13))
}

fn toy_model() -> GraphAugConfig {
    GraphAugConfig::fast_test()
        .seed(3)
        .epochs(6)
        .steps_per_epoch(3)
}

/// A unique, self-cleaning checkpoint directory per test.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("graphaug-runtime-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn embeddings_bits(rt: &Runtime) -> (Vec<u32>, Vec<u32>) {
    let (u, i) = rt.model().embeddings().unwrap();
    (
        u.as_slice().iter().map(|x| x.to_bits()).collect(),
        i.as_slice().iter().map(|x| x.to_bits()).collect(),
    )
}

fn loss_bits(losses: &[f32]) -> Vec<u32> {
    losses.iter().map(|l| l.to_bits()).collect()
}

#[test]
fn resume_reproduces_the_uninterrupted_run_bit_identically_at_1_and_4_threads() {
    let graph = toy_graph();
    for threads in [1usize, 4] {
        graphaug_par::set_thread_count(threads);

        let ref_dir = TempDir::new(&format!("ref-{threads}"));
        let mut reference = Runtime::new(
            RuntimeConfig::new(toy_model()).checkpoint_dir(ref_dir.path()),
            &graph,
        )
        .unwrap();
        let ref_report = reference.run().unwrap();
        assert_eq!(ref_report.epochs_completed, 6);
        assert!(reference.model().is_trained());

        // Crash after epoch 2 (simulated kill), then resume from disk.
        let dir = TempDir::new(&format!("crash-{threads}"));
        let crash_cfg = RuntimeConfig::new(toy_model())
            .checkpoint_dir(dir.path())
            .fault(FaultPlan::none().halt_after_epoch(2));
        let mut victim = Runtime::new(crash_cfg, &graph).unwrap();
        let victim_report = victim.run().unwrap();
        assert!(victim_report.halted_by_fault);
        assert_eq!(victim_report.epochs_completed, 3);
        drop(victim); // the "process" dies here

        let mut resumed = Runtime::resume(
            RuntimeConfig::new(toy_model()).checkpoint_dir(dir.path()),
            &graph,
        )
        .unwrap();
        assert_eq!(resumed.epochs_completed(), 3);
        let resumed_report = resumed.run().unwrap();
        assert_eq!(resumed_report.epochs_completed, 6);
        assert!(resumed.model().is_trained());

        // The loss trajectory concatenates exactly …
        let mut stitched = victim_report.step_losses.clone();
        stitched.extend_from_slice(&resumed_report.step_losses);
        assert_eq!(
            loss_bits(&ref_report.step_losses),
            loss_bits(&stitched),
            "threads={threads}: resumed loss trajectory must be bit-identical"
        );
        // … and the final embeddings are bit-identical.
        assert_eq!(
            embeddings_bits(&reference),
            embeddings_bits(&resumed),
            "threads={threads}: final embeddings must be bit-identical"
        );
    }
}

#[test]
fn mid_epoch_kill_resumes_bit_identically() {
    let graph = toy_graph();
    let mut reference = Runtime::new(RuntimeConfig::new(toy_model()), &graph).unwrap();
    reference.run().unwrap();

    // Kill between batches, mid-epoch (attempt 7 is step 1 of epoch 2).
    let dir = TempDir::new("midepoch");
    let mut victim = Runtime::new(
        RuntimeConfig::new(toy_model())
            .checkpoint_dir(dir.path())
            .fault(FaultPlan::none().halt_before_attempt(7)),
        &graph,
    )
    .unwrap();
    let report = victim.run().unwrap();
    assert!(report.halted_by_fault);
    drop(victim);

    let mut resumed = Runtime::resume(
        RuntimeConfig::new(toy_model()).checkpoint_dir(dir.path()),
        &graph,
    )
    .unwrap();
    resumed.run().unwrap();
    assert_eq!(embeddings_bits(&reference), embeddings_bits(&resumed));
}

#[test]
fn skip_batch_policy_rides_out_injected_nans() {
    let graph = toy_graph();
    let mut rt = Runtime::new(
        RuntimeConfig::new(toy_model())
            .policy(RecoveryPolicy::SkipBatch)
            .fault(FaultPlan::none().nan_grad_at(4).nan_grad_at(9)),
        &graph,
    )
    .unwrap();
    let report = rt.run().unwrap();
    assert_eq!(report.epochs_completed, 6);
    assert_eq!(report.recoveries.len(), 2);
    for r in &report.recoveries {
        assert_eq!(r.verdict, StepVerdict::Diverged);
        assert_eq!(r.action, RecoveryAction::SkippedBatch);
    }
    assert!([4, 9].contains(&report.recoveries[0].attempt));
    // Two batches were dropped, the rest trained normally.
    assert_eq!(report.step_losses.len(), 6 * 3 - 2);
    let (u, _) = rt.model().embeddings().unwrap();
    assert!(u.all_finite());
}

#[test]
fn clip_and_continue_policy_survives_nans_and_clips_every_step() {
    let graph = toy_graph();
    let mut rt = Runtime::new(
        RuntimeConfig::new(toy_model())
            .policy(RecoveryPolicy::ClipAndContinue { max_norm: 0.5 })
            .fault(FaultPlan::none().nan_grad_at(5)),
        &graph,
    )
    .unwrap();
    let report = rt.run().unwrap();
    assert_eq!(report.epochs_completed, 6);
    let clipped: Vec<_> = report
        .recoveries
        .iter()
        .filter(|r| r.action == RecoveryAction::ClippedContinue)
        .collect();
    assert_eq!(clipped.len(), 1);
    assert_eq!(clipped[0].attempt, 5);
    assert_eq!(clipped[0].verdict, StepVerdict::Diverged);
    let (u, _) = rt.model().embeddings().unwrap();
    assert!(u.all_finite());
}

#[test]
fn rollback_policy_restores_last_good_state_and_backs_off_the_lr() {
    let graph = toy_graph();
    // Two consecutive poisoned steps trip the `after: 2` threshold.
    let mut rt = Runtime::new(
        RuntimeConfig::new(toy_model())
            .policy(RecoveryPolicy::RollbackWithBackoff {
                after: 2,
                lr_factor: 0.5,
            })
            .fault(FaultPlan::none().nan_grad_at(7).nan_grad_at(8)),
        &graph,
    )
    .unwrap();
    let report = rt.run().unwrap();
    assert_eq!(report.epochs_completed, 6, "run must still complete");
    let rolled: Vec<_> = report
        .recoveries
        .iter()
        .filter(|r| matches!(r.action, RecoveryAction::RolledBack { .. }))
        .collect();
    assert_eq!(rolled.len(), 1, "exactly one rollback");
    let RecoveryAction::RolledBack { lr_scale } = rolled[0].action else {
        unreachable!()
    };
    assert_eq!(lr_scale, 0.5);
    assert_eq!(rt.lr_scale(), 0.5);
    // The first bad step was tolerated while the counter climbed.
    assert!(report
        .recoveries
        .iter()
        .any(|r| r.action == RecoveryAction::Tolerated));
    let (u, _) = rt.model().embeddings().unwrap();
    assert!(u.all_finite());
}

#[test]
fn truncated_checkpoint_is_a_typed_error() {
    let graph = toy_graph();
    let dir = TempDir::new("trunc");
    let mut rt = Runtime::new(
        RuntimeConfig::new(toy_model()).checkpoint_dir(dir.path()),
        &graph,
    )
    .unwrap();
    rt.run().unwrap();
    let ckpt = Checkpointer::new(dir.path()).unwrap();
    let mut gens = ckpt.generations();
    gens.sort_unstable();
    let newest = ckpt.path_for(*gens.last().unwrap());

    truncate_checkpoint(&newest, 40).unwrap();
    assert!(matches!(
        Checkpointer::load(&newest).unwrap_err(),
        SnapshotError::Truncated { .. }
    ));
}

#[test]
fn flipped_byte_is_a_checksum_mismatch() {
    let graph = toy_graph();
    let dir = TempDir::new("flip");
    let mut rt = Runtime::new(
        RuntimeConfig::new(toy_model()).checkpoint_dir(dir.path()),
        &graph,
    )
    .unwrap();
    rt.run().unwrap();
    let ckpt = Checkpointer::new(dir.path()).unwrap();
    let mut gens = ckpt.generations();
    gens.sort_unstable();
    let newest = ckpt.path_for(*gens.last().unwrap());

    corrupt_checkpoint(&newest, 1000).unwrap();
    assert_eq!(
        Checkpointer::load(&newest).unwrap_err(),
        SnapshotError::ChecksumMismatch
    );
}

#[test]
fn wrong_format_version_is_rejected() {
    let graph = toy_graph();
    let dir = TempDir::new("version");
    let mut rt = Runtime::new(
        RuntimeConfig::new(toy_model()).checkpoint_dir(dir.path()),
        &graph,
    )
    .unwrap();
    rt.run().unwrap();
    let ckpt = Checkpointer::new(dir.path()).unwrap();
    let mut gens = ckpt.generations();
    gens.sort_unstable();
    let newest = ckpt.path_for(*gens.last().unwrap());

    // Bytes 8..12 hold the format version.
    let mut bytes = fs::read(&newest).unwrap();
    bytes[8] = 0xFE;
    fs::write(&newest, bytes).unwrap();
    assert!(matches!(
        Checkpointer::load(&newest).unwrap_err(),
        SnapshotError::BadVersion { found, .. } if found != 1
    ));
}

#[test]
fn resume_falls_back_past_a_corrupt_newest_generation() {
    let graph = toy_graph();
    let dir = TempDir::new("fallback");
    let mut rt = Runtime::new(
        RuntimeConfig::new(toy_model()).checkpoint_dir(dir.path()),
        &graph,
    )
    .unwrap();
    rt.run().unwrap();
    drop(rt);

    let ckpt = Checkpointer::new(dir.path()).unwrap();
    let mut gens = ckpt.generations();
    gens.sort_unstable();
    assert_eq!(gens.len(), 2, "two generations retained");
    corrupt_checkpoint(&ckpt.path_for(*gens.last().unwrap()), 500).unwrap();

    // latest_valid walks past the damaged newest generation …
    let (gen, state) = ckpt.latest_valid().unwrap();
    assert_eq!(gen, gens[0]);
    assert_eq!(
        state.epoch, 5,
        "previous generation is the epoch-5 snapshot"
    );

    // … and Runtime::resume restores it and finishes the last epoch.
    let mut resumed = Runtime::resume(
        RuntimeConfig::new(toy_model()).checkpoint_dir(dir.path()),
        &graph,
    )
    .unwrap();
    assert_eq!(resumed.epochs_completed(), 5);
    let report = resumed.run().unwrap();
    assert_eq!(report.epochs_completed, 6);
}

#[test]
fn startup_sweeps_stale_tmp_files_and_ignores_foreign_files() {
    let dir = TempDir::new("tmp-sweep");
    fs::write(dir.path().join("ckpt-00000009.bin.tmp"), b"torn write").unwrap();
    fs::write(dir.path().join("notes.txt"), b"unrelated").unwrap();
    let ckpt = Checkpointer::new(dir.path()).unwrap();
    assert!(!dir.path().join("ckpt-00000009.bin.tmp").exists());
    assert!(dir.path().join("notes.txt").exists());
    assert!(ckpt.generations().is_empty());
    assert!(ckpt.latest_valid().is_none());
}

#[test]
fn resume_requires_a_checkpoint_and_resume_or_new_falls_back() {
    let graph = toy_graph();
    let dir = TempDir::new("nockpt");
    let cfg = RuntimeConfig::new(toy_model()).checkpoint_dir(dir.path());
    assert!(matches!(
        Runtime::resume(cfg.clone(), &graph),
        Err(RuntimeError::NoCheckpoint(_))
    ));
    let rt = Runtime::resume_or_new(cfg, &graph).unwrap();
    assert_eq!(rt.epochs_completed(), 0);
}

#[test]
fn checkpoints_from_a_different_run_are_rejected_as_incompatible() {
    let graph = toy_graph();
    let dir = TempDir::new("incompat");
    let mut rt = Runtime::new(
        RuntimeConfig::new(toy_model()).checkpoint_dir(dir.path()),
        &graph,
    )
    .unwrap();
    rt.run().unwrap();
    drop(rt);

    // Same graph, different seed → different run identity.
    let other = RuntimeConfig::new(toy_model().seed(99)).checkpoint_dir(dir.path());
    assert!(matches!(
        Runtime::resume(other, &graph),
        Err(RuntimeError::Snapshot(SnapshotError::Incompatible(_)))
    ));
}

#[test]
fn runtime_overhead_checkpointing_does_not_change_the_trajectory() {
    // Checkpointing must be observationally free: the same run with and
    // without a checkpoint directory produces bit-identical models.
    let graph = toy_graph();
    let mut plain = Runtime::new(RuntimeConfig::new(toy_model()), &graph).unwrap();
    let plain_report = plain.run().unwrap();

    let dir = TempDir::new("overhead");
    let mut ckpt = Runtime::new(
        RuntimeConfig::new(toy_model()).checkpoint_dir(dir.path()),
        &graph,
    )
    .unwrap();
    let ckpt_report = ckpt.run().unwrap();

    assert_eq!(
        loss_bits(&plain_report.step_losses),
        loss_bits(&ckpt_report.step_losses)
    );
    assert_eq!(embeddings_bits(&plain), embeddings_bits(&ckpt));
    assert!(ckpt_report.checkpoints_written >= 2);
}
