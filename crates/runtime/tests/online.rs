//! Integration tests for the online-learning loop: live windowed
//! fine-tuning must be bit-identical to offline replay of the same log
//! (at multiple thread counts), a concurrent read-only watcher must never
//! observe a partially written checkpoint, and a fine-tuner killed
//! mid-stream must resume from its watermark and converge to the same
//! bytes as an uninterrupted run.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use graphaug_core::GraphAugConfig;
use graphaug_data::{generate, SyntheticConfig};
use graphaug_graph::InteractionGraph;
use graphaug_ingest::LogWriter;
use graphaug_runtime::{checkpoint, FineTuner, Runtime, RuntimeConfig, SnapshotError};

fn toy_graph() -> InteractionGraph {
    generate(&SyntheticConfig::new(70, 55, 800).clusters(4).seed(13))
}

fn toy_model() -> GraphAugConfig {
    GraphAugConfig::fast_test()
        .seed(3)
        .epochs(6)
        .steps_per_epoch(3)
}

/// A unique, self-cleaning directory per test.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("graphaug-online-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Deterministic stream of in-bounds interactions for the toy graph.
fn synthetic_record(k: u64) -> (u32, u32) {
    (((k * 7 + 3) % 70) as u32, ((k * 11 + 5) % 55) as u32)
}

fn copy_dir(from: &Path, to: &Path) {
    for entry in fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

fn newest_checkpoint_bytes(dir: &Path) -> (u64, Vec<u8>) {
    let gen = checkpoint::newest_generation(dir).expect("a checkpoint exists");
    (
        gen,
        fs::read(checkpoint::generation_path(dir, gen)).unwrap(),
    )
}

fn train_base(dir: &Path, graph: &InteractionGraph) {
    let mut rt = Runtime::new(RuntimeConfig::new(toy_model()).checkpoint_dir(dir), graph).unwrap();
    let report = rt.run().unwrap();
    assert_eq!(report.epochs_completed, 6);
}

#[test]
fn live_windowed_polling_equals_offline_replay_bit_identically_at_1_and_4_threads() {
    const WINDOW: u64 = 16;
    let base = toy_graph();
    let mut per_thread_bytes: Vec<Vec<u8>> = Vec::new();

    for threads in [1usize, 4] {
        graphaug_par::set_thread_count(threads);

        // One base training run; clone its checkpoint dir so the live and
        // replay fine-tuners warm-start from byte-identical state.
        let live_dir = TempDir::new(&format!("live-{threads}"));
        let replay_dir = TempDir::new(&format!("replay-{threads}"));
        let log_dir = TempDir::new(&format!("log-{threads}"));
        train_base(live_dir.path(), &base);
        copy_dir(live_dir.path(), replay_dir.path());

        // Live path: the log grows while the fine-tuner polls. Rounds fire
        // only at complete WINDOW boundaries; the 5-record tail stays
        // pending.
        let mut writer = LogWriter::open(log_dir.path(), 32).unwrap();
        let mut live = FineTuner::open(
            RuntimeConfig::new(toy_model()).checkpoint_dir(live_dir.path()),
            &base,
            log_dir.path(),
            WINDOW,
        )
        .unwrap();

        let mut live_rounds = Vec::new();
        let mut appended = 0u64;
        let feed = |w: &mut LogWriter, n: u64, appended: &mut u64| {
            for _ in 0..n {
                let (u, i) = synthetic_record(*appended);
                w.append(u, i).unwrap();
                *appended += 1;
            }
        };

        feed(&mut writer, 10, &mut appended);
        assert!(live.poll_once().unwrap().is_none(), "10 < one window");
        feed(&mut writer, 6, &mut appended);
        live_rounds.push(live.poll_once().unwrap().expect("window 1 complete"));
        feed(&mut writer, WINDOW, &mut appended);
        live_rounds.push(live.poll_once().unwrap().expect("window 2 complete"));
        feed(&mut writer, WINDOW + 5, &mut appended);
        live_rounds.push(live.poll_once().unwrap().expect("window 3 complete"));
        assert!(
            live.poll_once().unwrap().is_none(),
            "partial tail must stay pending"
        );
        assert_eq!(live.watermark(), 3 * WINDOW);
        assert_eq!(live.finetunes(), 3);

        // Replay path: same finished log, rounds fired back-to-back.
        let mut replay = FineTuner::open(
            RuntimeConfig::new(toy_model()).checkpoint_dir(replay_dir.path()),
            &base,
            log_dir.path(),
            WINDOW,
        )
        .unwrap();
        let replay_rounds = replay.run_pending().unwrap();
        assert_eq!(replay_rounds.len(), 3);
        assert_eq!(replay.watermark(), 3 * WINDOW);

        // Round-by-round equivalence, then byte-identical checkpoints.
        for (l, r) in live_rounds.iter().zip(&replay_rounds) {
            assert_eq!(l.round, r.round);
            assert_eq!(l.watermark, r.watermark);
            assert_eq!(l.applied, r.applied);
            assert_eq!(l.duplicates, r.duplicates);
            assert_eq!(l.steps, r.steps);
            assert_eq!(l.mean_loss.to_bits(), r.mean_loss.to_bits());
        }
        let (live_gen, live_bytes) = newest_checkpoint_bytes(live_dir.path());
        let (replay_gen, replay_bytes) = newest_checkpoint_bytes(replay_dir.path());
        assert_eq!(live_gen, replay_gen);
        assert_eq!(
            live_bytes, replay_bytes,
            "threads={threads}: live vs replay checkpoints must be byte-identical"
        );
        per_thread_bytes.push(live_bytes);
    }

    // The determinism contract also holds across thread counts.
    assert_eq!(
        per_thread_bytes[0], per_thread_bytes[1],
        "checkpoints must be byte-identical at 1 and 4 threads"
    );
}

#[test]
fn a_fine_tuner_killed_mid_stream_resumes_from_its_watermark_bit_identically() {
    const WINDOW: u64 = 16;
    graphaug_par::set_thread_count(1);
    let base = toy_graph();

    let ref_dir = TempDir::new("kill-ref");
    let kill_dir = TempDir::new("kill-victim");
    let log_dir = TempDir::new("kill-log");
    train_base(ref_dir.path(), &base);
    copy_dir(ref_dir.path(), kill_dir.path());

    // A finished log of exactly three windows.
    let mut writer = LogWriter::open(log_dir.path(), 16).unwrap();
    for k in 0..3 * WINDOW {
        let (u, i) = synthetic_record(k);
        writer.append(u, i).unwrap();
    }

    // Victim: one round, then the process "dies".
    let cfg = |dir: &Path| RuntimeConfig::new(toy_model()).checkpoint_dir(dir);
    let mut victim = FineTuner::open(cfg(kill_dir.path()), &base, log_dir.path(), WINDOW).unwrap();
    victim.poll_once().unwrap().expect("round 1");
    assert_eq!(victim.watermark(), WINDOW);
    drop(victim);

    // Reopen: `open` must replay the log up to the persisted watermark so
    // the resumed graph matches the checkpoint, then drain the rest.
    let mut resumed = FineTuner::open(cfg(kill_dir.path()), &base, log_dir.path(), WINDOW).unwrap();
    assert_eq!(resumed.watermark(), WINDOW, "watermark restored from disk");
    assert!(
        resumed.graph().n_interactions() > base.n_interactions(),
        "resumed graph must include the absorbed window"
    );
    let rounds = resumed.run_pending().unwrap();
    assert_eq!(rounds.len(), 2);

    // Reference: the same log drained in one uninterrupted process.
    let mut reference =
        FineTuner::open(cfg(ref_dir.path()), &base, log_dir.path(), WINDOW).unwrap();
    assert_eq!(reference.run_pending().unwrap().len(), 3);

    let (ref_gen, ref_bytes) = newest_checkpoint_bytes(ref_dir.path());
    let (kill_gen, kill_bytes) = newest_checkpoint_bytes(kill_dir.path());
    assert_eq!(ref_gen, kill_gen);
    assert_eq!(
        ref_bytes, kill_bytes,
        "kill + resume must converge to the uninterrupted run's bytes"
    );
}

#[test]
fn concurrent_reader_never_observes_a_partial_checkpoint() {
    graphaug_par::set_thread_count(1);
    let dir = TempDir::new("concurrent");
    let dir_path = dir.path().to_path_buf();
    let graph = toy_graph();

    // Writer: a real training run publishing a generation per epoch into
    // the watched directory (atomic tmp+rename, keep-2 pruning).
    let writer = std::thread::spawn(move || {
        let cfg = RuntimeConfig::new(toy_model().epochs(12)).checkpoint_dir(&dir_path);
        let mut rt = Runtime::new(cfg, &graph).unwrap();
        rt.run().unwrap();
    });

    // Reader: hammer the read-only inspection API the serving watcher
    // uses. Three invariants while the writer races us:
    //  * every readable checkpoint file decodes cleanly — a file that
    //    exists is never a torn write (the only tolerated Err is Io, from
    //    a file pruned between the directory listing and the read);
    //  * `load_latest_valid` never goes backwards;
    //  * `.tmp` staging files never leak into the generation listing.
    let latest_seen = Arc::new(AtomicU64::new(0));
    let mut observed_any = false;
    while !writer.is_finished() {
        for info in checkpoint::inspect_dir(dir.path()) {
            match &info.status {
                Ok(summary) => {
                    assert!(summary.epoch <= 12);
                    observed_any = true;
                }
                Err(SnapshotError::Io(_)) => {} // pruned mid-read: fine
                Err(e) => panic!(
                    "reader observed a partial/corrupt checkpoint gen {}: {e}",
                    info.generation
                ),
            }
        }
        if let Some((gen, state)) = checkpoint::load_latest_valid(dir.path()) {
            let prev = latest_seen.swap(gen + 1, Ordering::Relaxed);
            assert!(
                gen + 1 >= prev,
                "latest_valid went backwards: {} then {gen}",
                prev - 1
            );
            assert!(state.epoch <= 12);
        }
        for g in checkpoint::list_generations(dir.path()) {
            let name = checkpoint::generation_path(dir.path(), g);
            assert!(!name.to_string_lossy().ends_with(".tmp"));
        }
    }
    writer.join().unwrap();

    // Final pass on the quiesced directory: everything left is valid and
    // the newest generation reflects the finished 12-epoch run.
    assert!(observed_any, "the race window never opened");
    let (gen, state) = checkpoint::load_latest_valid(dir.path()).expect("final checkpoint");
    assert!(gen + 1 >= latest_seen.load(Ordering::Relaxed));
    assert_eq!(state.epoch, 12);
    for info in checkpoint::inspect_dir(dir.path()) {
        info.status.expect("quiesced checkpoints all decode");
    }
}
