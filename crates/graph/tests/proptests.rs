//! Property-based tests for the interaction-graph domain layer.

use graphaug_graph::{
    group_users_by_degree, inject_fake_edges, InteractionGraph, TrainTestSplit, TripletSampler,
};
use proptest::prelude::*;

/// Strategy: a random edge list within a `u × v` universe.
fn edges(max_u: u32, max_v: u32) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..max_u, 0..max_v), 1..120)
}

proptest! {
    #[test]
    fn graph_dedups_and_bounds_edges(e in edges(12, 15)) {
        let n = e.len();
        let g = InteractionGraph::new(12, 15, e);
        prop_assert!(g.n_interactions() <= n);
        for &(u, v) in g.edges() {
            prop_assert!(g.has_edge(u, v));
        }
        // Degrees sum to edge count on both sides.
        prop_assert_eq!(g.user_degrees().iter().sum::<usize>(), g.n_interactions());
        prop_assert_eq!(g.item_degrees().iter().sum::<usize>(), g.n_interactions());
    }

    #[test]
    fn adjacency_nnz_is_twice_edges(e in edges(10, 10)) {
        let g = InteractionGraph::new(10, 10, e);
        prop_assert_eq!(g.adjacency().nnz(), 2 * g.n_interactions());
    }

    #[test]
    fn split_partition_is_exact_and_disjoint(e in edges(15, 20), frac in 0.0f64..0.9, seed in 0u64..50) {
        let g = InteractionGraph::new(15, 20, e);
        let s = TrainTestSplit::per_user(&g, frac, seed);
        prop_assert_eq!(
            s.train.n_interactions() + s.test.n_interactions(),
            g.n_interactions()
        );
        for &(u, v) in s.test.edges() {
            prop_assert!(!s.train.has_edge(u, v));
            prop_assert!(g.has_edge(u, v));
        }
        // Every user that had interactions keeps at least one in train.
        for u in 0..15 {
            if !g.items_of(u).is_empty() {
                prop_assert!(!s.train.items_of(u).is_empty());
            }
        }
    }

    #[test]
    fn sampled_triplets_always_valid(e in edges(10, 12), seed in 0u64..20) {
        let g = InteractionGraph::new(10, 12, e);
        let mut s = TripletSampler::new(&g, seed);
        for _ in 0..50 {
            let t = s.sample();
            prop_assert!(g.has_edge(t.user, t.pos));
            prop_assert!(!g.has_edge(t.user, t.neg));
        }
    }

    #[test]
    fn noise_injection_only_adds(e in edges(10, 12), ratio in 0.0f64..0.5, seed in 0u64..20) {
        let g = InteractionGraph::new(10, 12, e);
        let noisy = inject_fake_edges(&g, ratio, seed);
        prop_assert!(noisy.n_interactions() >= g.n_interactions());
        for &(u, v) in g.edges() {
            prop_assert!(noisy.has_edge(u, v));
        }
    }

    #[test]
    fn degree_groups_partition_active_users(e in edges(20, 10)) {
        let g = InteractionGraph::new(20, 10, e);
        let groups = group_users_by_degree(&g, &[2, 4, 8]);
        let mut seen = std::collections::HashSet::new();
        for grp in &groups {
            for &u in &grp.users {
                prop_assert!(seen.insert(u), "user {} in two buckets", u);
                let d = g.items_of(u as usize).len();
                prop_assert!(d >= grp.lo && d < grp.hi);
            }
        }
        let active = (0..20).filter(|&u| !g.items_of(u).is_empty()).count();
        prop_assert_eq!(seen.len(), active);
    }
}
