//! Property-based tests for the interaction-graph domain layer.
//!
//! Runs on the in-repo property runner (`graphaug_rng::prop`) — seeded case
//! generation, shrink-by-halving, replayable failure seeds.

use graphaug_graph::{
    group_users_by_degree, inject_fake_edges, InteractionGraph, TrainTestSplit, TripletSampler,
};
use graphaug_rng::prop::{check, Gen, DEFAULT_CASES};
use graphaug_rng::{prop_assert, prop_assert_eq};

/// Generator: a random edge list within a `u × v` universe.
fn edges(g: &mut Gen, max_u: u32, max_v: u32) -> Vec<(u32, u32)> {
    let n = g.len_in(1, 120);
    g.vec_of(n, |g| (g.random_range(0..max_u), g.random_range(0..max_v)))
}

#[test]
fn graph_dedups_and_bounds_edges() {
    check("graph_dedups_and_bounds_edges", DEFAULT_CASES, |gen| {
        let e = edges(gen, 12, 15);
        let n = e.len();
        let g = InteractionGraph::new(12, 15, e);
        prop_assert!(g.n_interactions() <= n);
        for &(u, v) in g.edges() {
            prop_assert!(g.has_edge(u, v));
        }
        // Degrees sum to edge count on both sides.
        prop_assert_eq!(g.user_degrees().iter().sum::<usize>(), g.n_interactions());
        prop_assert_eq!(g.item_degrees().iter().sum::<usize>(), g.n_interactions());
        Ok(())
    });
}

#[test]
fn adjacency_nnz_is_twice_edges() {
    check("adjacency_nnz_is_twice_edges", DEFAULT_CASES, |gen| {
        let e = edges(gen, 10, 10);
        let g = InteractionGraph::new(10, 10, e);
        prop_assert_eq!(g.adjacency().nnz(), 2 * g.n_interactions());
        Ok(())
    });
}

#[test]
fn split_partition_is_exact_and_disjoint() {
    check(
        "split_partition_is_exact_and_disjoint",
        DEFAULT_CASES,
        |gen| {
            let e = edges(gen, 15, 20);
            let frac = gen.random_range(0.0f64..0.9);
            let seed = gen.random_range(0u64..50);
            let g = InteractionGraph::new(15, 20, e);
            let s = TrainTestSplit::per_user(&g, frac, seed);
            prop_assert_eq!(
                s.train.n_interactions() + s.test.n_interactions(),
                g.n_interactions()
            );
            for &(u, v) in s.test.edges() {
                prop_assert!(!s.train.has_edge(u, v));
                prop_assert!(g.has_edge(u, v));
            }
            // Every user that had interactions keeps at least one in train.
            for u in 0..15 {
                if !g.items_of(u).is_empty() {
                    prop_assert!(!s.train.items_of(u).is_empty());
                }
            }
            Ok(())
        },
    );
}

#[test]
fn sampled_triplets_always_valid() {
    check("sampled_triplets_always_valid", DEFAULT_CASES, |gen| {
        let e = edges(gen, 10, 12);
        let seed = gen.random_range(0u64..20);
        let g = InteractionGraph::new(10, 12, e);
        let mut s = TripletSampler::new(&g, seed);
        for _ in 0..50 {
            let t = s.sample();
            prop_assert!(g.has_edge(t.user, t.pos));
            prop_assert!(!g.has_edge(t.user, t.neg));
        }
        Ok(())
    });
}

#[test]
fn noise_injection_only_adds() {
    check("noise_injection_only_adds", DEFAULT_CASES, |gen| {
        let e = edges(gen, 10, 12);
        let ratio = gen.random_range(0.0f64..0.5);
        let seed = gen.random_range(0u64..20);
        let g = InteractionGraph::new(10, 12, e);
        let noisy = inject_fake_edges(&g, ratio, seed);
        prop_assert!(noisy.n_interactions() >= g.n_interactions());
        for &(u, v) in g.edges() {
            prop_assert!(noisy.has_edge(u, v));
        }
        Ok(())
    });
}

#[test]
fn degree_groups_partition_active_users() {
    check(
        "degree_groups_partition_active_users",
        DEFAULT_CASES,
        |gen| {
            let e = edges(gen, 20, 10);
            let g = InteractionGraph::new(20, 10, e);
            let groups = group_users_by_degree(&g, &[2, 4, 8]);
            let mut seen = std::collections::HashSet::new();
            for grp in &groups {
                for &u in &grp.users {
                    prop_assert!(seen.insert(u), "user {} in two buckets", u);
                    let d = g.items_of(u as usize).len();
                    prop_assert!(d >= grp.lo && d < grp.hi);
                }
            }
            let active = (0..20).filter(|&u| !g.items_of(u).is_empty()).count();
            prop_assert_eq!(seen.len(), active);
            Ok(())
        },
    );
}
