//! Property-based tests for the interaction-graph domain layer.
//!
//! Runs on the in-repo property runner (`graphaug_rng::prop`) — seeded case
//! generation, shrink-by-halving, replayable failure seeds.

use graphaug_graph::{
    group_users_by_degree, inject_fake_edges, InteractionGraph, TrainTestSplit, TripletSampler,
};
use graphaug_rng::prop::{check, Gen, DEFAULT_CASES};
use graphaug_rng::{prop_assert, prop_assert_eq};

/// Generator: a random edge list within a `u × v` universe.
fn edges(g: &mut Gen, max_u: u32, max_v: u32) -> Vec<(u32, u32)> {
    let n = g.len_in(1, 120);
    g.vec_of(n, |g| (g.random_range(0..max_u), g.random_range(0..max_v)))
}

#[test]
fn graph_dedups_and_bounds_edges() {
    check("graph_dedups_and_bounds_edges", DEFAULT_CASES, |gen| {
        let e = edges(gen, 12, 15);
        let n = e.len();
        let g = InteractionGraph::new(12, 15, e);
        prop_assert!(g.n_interactions() <= n);
        for &(u, v) in g.edges() {
            prop_assert!(g.has_edge(u, v));
        }
        // Degrees sum to edge count on both sides.
        prop_assert_eq!(g.user_degrees().iter().sum::<usize>(), g.n_interactions());
        prop_assert_eq!(g.item_degrees().iter().sum::<usize>(), g.n_interactions());
        Ok(())
    });
}

#[test]
fn adjacency_nnz_is_twice_edges() {
    check("adjacency_nnz_is_twice_edges", DEFAULT_CASES, |gen| {
        let e = edges(gen, 10, 10);
        let g = InteractionGraph::new(10, 10, e);
        prop_assert_eq!(g.adjacency().nnz(), 2 * g.n_interactions());
        Ok(())
    });
}

#[test]
fn split_partition_is_exact_and_disjoint() {
    check(
        "split_partition_is_exact_and_disjoint",
        DEFAULT_CASES,
        |gen| {
            let e = edges(gen, 15, 20);
            let frac = gen.random_range(0.0f64..0.9);
            let seed = gen.random_range(0u64..50);
            let g = InteractionGraph::new(15, 20, e);
            let s = TrainTestSplit::per_user(&g, frac, seed);
            prop_assert_eq!(
                s.train.n_interactions() + s.test.n_interactions(),
                g.n_interactions()
            );
            for &(u, v) in s.test.edges() {
                prop_assert!(!s.train.has_edge(u, v));
                prop_assert!(g.has_edge(u, v));
            }
            // Every user that had interactions keeps at least one in train.
            for u in 0..15 {
                if !g.items_of(u).is_empty() {
                    prop_assert!(!s.train.items_of(u).is_empty());
                }
            }
            Ok(())
        },
    );
}

#[test]
fn sampled_triplets_always_valid() {
    check("sampled_triplets_always_valid", DEFAULT_CASES, |gen| {
        let e = edges(gen, 10, 12);
        let seed = gen.random_range(0u64..20);
        let g = InteractionGraph::new(10, 12, e);
        let mut s = TripletSampler::new(&g, seed);
        for _ in 0..50 {
            let t = s.sample();
            prop_assert!(g.has_edge(t.user, t.pos));
            prop_assert!(!g.has_edge(t.user, t.neg));
        }
        Ok(())
    });
}

/// The chunked batch sampler's contract: the chunk grid and per-chunk
/// stream seeds depend only on the batch size and the sampler's stream
/// counter, never on `GRAPHAUG_THREADS` — so batches are bit-identical at
/// any worker count (here 1 vs 3 vs 4), including across *successive*
/// batches where the stream counter has advanced.
#[test]
fn sample_batch_is_thread_count_invariant() {
    check("sample_batch_is_thread_count_invariant", 16, |gen| {
        let e = edges(gen, 25, 30);
        let seed = gen.random_range(0u64..1000);
        let n = gen.len_in(1, 600);
        let g = InteractionGraph::new(25, 30, e);
        let run = |threads: usize| {
            graphaug_par::set_thread_count(threads);
            let mut s = TripletSampler::new(&g, seed);
            let batches = vec![s.sample_batch(n), s.sample_batch(n / 2 + 1)];
            graphaug_par::set_thread_count(1);
            batches
        };
        let serial = run(1);
        for threads in [3usize, 4] {
            prop_assert_eq!(&serial, &run(threads));
        }
        Ok(())
    });
}

/// Chunked `sample_batch` uses per-chunk derived streams, so it is only
/// *statistically* equivalent to a loop of serial `sample()` draws. Check
/// both paths against the exact target distributions: positives uniform
/// over the observed edges (χ² test) and negatives uniform over each
/// user's complement item set (first-moment test), with the two paths'
/// statistics also required to agree with each other.
#[test]
fn chunked_batches_match_serial_sampler_statistically() {
    // A deterministic, moderately skewed bipartite graph.
    let mut e = Vec::new();
    for u in 0..30u32 {
        for k in 0..(2 + u % 7) {
            e.push((u, (u * 11 + k * 17) % 40));
        }
    }
    let g = InteractionGraph::new(30, 40, e);
    let n_edges = g.n_interactions();
    let draws = 60_000usize;

    // χ² statistic of observed edge counts against the uniform expectation.
    let chi_sq = |counts: &[usize]| -> f64 {
        let expected = draws as f64 / n_edges as f64;
        counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum()
    };
    let edge_rank =
        |u: u32, p: u32| -> usize { g.edges().iter().position(|&ep| ep == (u, p)).unwrap() };

    // Serial path: a loop of `sample()` draws.
    let mut serial_counts = vec![0usize; n_edges];
    let mut serial_neg_sum = 0f64;
    let mut s = TripletSampler::new(&g, 12345);
    for _ in 0..draws {
        let t = s.sample();
        serial_counts[edge_rank(t.user, t.pos)] += 1;
        serial_neg_sum += t.neg as f64;
    }

    // Chunked path: batches through the per-chunk derived streams.
    let mut batch_counts = vec![0usize; n_edges];
    let mut batch_neg_sum = 0f64;
    let mut s = TripletSampler::new(&g, 12345);
    for _ in 0..draws / 1000 {
        let (users, pos, neg) = s.sample_batch(1000);
        for i in 0..users.len() {
            batch_counts[edge_rank(users[i], pos[i])] += 1;
            batch_neg_sum += neg[i] as f64;
        }
    }

    // Both paths must pass a generous χ² bound (dof = n_edges − 1; the
    // bound is mean + 6σ of the χ² distribution).
    let dof = (n_edges - 1) as f64;
    let bound = dof + 6.0 * (2.0 * dof).sqrt();
    for (label, counts) in [("serial", &serial_counts), ("batch", &batch_counts)] {
        let x = chi_sq(counts);
        assert!(
            x < bound,
            "{label} positives χ² = {x:.1} ≥ bound {bound:.1}"
        );
    }

    // Exact expected mean of the negative item index: positives are uniform
    // over edges, so user u is the anchor with probability deg(u)/|E|, and
    // the negative is then uniform over u's complement item set.
    let mut expected_neg = 0f64;
    for u in 0..g.n_users() {
        let items = g.items_of(u);
        if items.is_empty() {
            continue;
        }
        let comp_sum: f64 = (0..40u32)
            .filter(|i| !items.contains(i))
            .map(f64::from)
            .sum();
        let comp_mean = comp_sum / (40 - items.len()) as f64;
        expected_neg += items.len() as f64 / n_edges as f64 * comp_mean;
    }
    let serial_mean = serial_neg_sum / draws as f64;
    let batch_mean = batch_neg_sum / draws as f64;
    // The item universe spans [0, 40); σ of one draw is < 12, so the mean
    // of 60k draws has σ < 0.05. Allow ±0.3 (6σ) against the exact value
    // and require the two paths to agree to the same precision.
    assert!(
        (serial_mean - expected_neg).abs() < 0.3,
        "serial negative mean {serial_mean:.3} vs expected {expected_neg:.3}"
    );
    assert!(
        (batch_mean - expected_neg).abs() < 0.3,
        "batch negative mean {batch_mean:.3} vs expected {expected_neg:.3}"
    );
    assert!(
        (serial_mean - batch_mean).abs() < 0.3,
        "serial {serial_mean:.3} and batch {batch_mean:.3} negative means diverge"
    );
}

#[test]
fn noise_injection_only_adds() {
    check("noise_injection_only_adds", DEFAULT_CASES, |gen| {
        let e = edges(gen, 10, 12);
        let ratio = gen.random_range(0.0f64..0.5);
        let seed = gen.random_range(0u64..20);
        let g = InteractionGraph::new(10, 12, e);
        let noisy = inject_fake_edges(&g, ratio, seed);
        prop_assert!(noisy.n_interactions() >= g.n_interactions());
        for &(u, v) in g.edges() {
            prop_assert!(noisy.has_edge(u, v));
        }
        Ok(())
    });
}

#[test]
fn degree_groups_partition_active_users() {
    check(
        "degree_groups_partition_active_users",
        DEFAULT_CASES,
        |gen| {
            let e = edges(gen, 20, 10);
            let g = InteractionGraph::new(20, 10, e);
            let groups = group_users_by_degree(&g, &[2, 4, 8]);
            let mut seen = std::collections::HashSet::new();
            for grp in &groups {
                for &u in &grp.users {
                    prop_assert!(seen.insert(u), "user {} in two buckets", u);
                    let d = g.items_of(u as usize).len();
                    prop_assert!(d >= grp.lo && d < grp.hi);
                }
            }
            let active = (0..20).filter(|&u| !g.items_of(u).is_empty()).count();
            prop_assert_eq!(seen.len(), active);
            Ok(())
        },
    );
}
