//! Seeded train/test splitting of interaction graphs.

use graphaug_rng::{SliceRandom, StdRng};

use crate::interaction::InteractionGraph;

/// A train/test partition of an interaction graph.
///
/// The split is per-user: a fraction of each user's interactions is held out
/// for testing (users with a single interaction keep it in train so every
/// trainable user has at least one positive).
#[derive(Clone, Debug)]
pub struct TrainTestSplit {
    /// Training interactions.
    pub train: InteractionGraph,
    /// Held-out test interactions (same user/item universe).
    pub test: InteractionGraph,
}

impl TrainTestSplit {
    /// Splits `g` holding out `test_fraction` of every user's interactions
    /// (rounded down, at least one interaction stays in train).
    pub fn per_user(g: &InteractionGraph, test_fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&test_fraction),
            "fraction must be in [0,1)"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train = Vec::new();
        let mut test = Vec::new();
        for u in 0..g.n_users() {
            let mut items: Vec<u32> = g.items_of(u).to_vec();
            items.shuffle(&mut rng);
            let n_test = ((items.len() as f64) * test_fraction).floor() as usize;
            let n_test = n_test.min(items.len().saturating_sub(1));
            for (i, v) in items.into_iter().enumerate() {
                if i < n_test {
                    test.push((u as u32, v));
                } else {
                    train.push((u as u32, v));
                }
            }
        }
        TrainTestSplit {
            train: InteractionGraph::new(g.n_users(), g.n_items(), train),
            test: InteractionGraph::new(g.n_users(), g.n_items(), test),
        }
    }

    /// Users that have at least one held-out interaction (the evaluation
    /// population).
    pub fn test_users(&self) -> Vec<u32> {
        (0..self.test.n_users() as u32)
            .filter(|&u| !self.test.items_of(u as usize).is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_graph() -> InteractionGraph {
        let mut edges = Vec::new();
        for u in 0..20u32 {
            for v in 0..10u32 {
                if (u + v) % 2 == 0 {
                    edges.push((u, v));
                }
            }
        }
        InteractionGraph::new(20, 10, edges)
    }

    #[test]
    fn split_partitions_edges() {
        let g = dense_graph();
        let s = TrainTestSplit::per_user(&g, 0.2, 42);
        assert_eq!(
            s.train.n_interactions() + s.test.n_interactions(),
            g.n_interactions()
        );
        // No overlap.
        for &(u, v) in s.test.edges() {
            assert!(!s.train.has_edge(u, v));
        }
    }

    #[test]
    fn every_user_keeps_a_training_positive() {
        let g = dense_graph();
        let s = TrainTestSplit::per_user(&g, 0.5, 7);
        for u in 0..20 {
            assert!(
                !s.train.items_of(u).is_empty(),
                "user {u} lost all train items"
            );
        }
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let g = dense_graph();
        let a = TrainTestSplit::per_user(&g, 0.2, 1);
        let b = TrainTestSplit::per_user(&g, 0.2, 1);
        let c = TrainTestSplit::per_user(&g, 0.2, 2);
        assert_eq!(a.test.edges(), b.test.edges());
        assert_ne!(a.test.edges(), c.test.edges());
    }

    #[test]
    fn singleton_users_stay_in_train() {
        let g = InteractionGraph::new(2, 3, vec![(0, 1), (1, 0), (1, 2)]);
        let s = TrainTestSplit::per_user(&g, 0.5, 3);
        assert_eq!(s.train.items_of(0), &[1]);
        assert!(s.test.items_of(0).is_empty());
    }

    #[test]
    fn test_users_lists_only_users_with_holdout() {
        let g = InteractionGraph::new(2, 4, vec![(0, 0), (0, 1), (0, 2), (0, 3), (1, 0)]);
        let s = TrainTestSplit::per_user(&g, 0.4, 5);
        assert_eq!(s.test_users(), vec![0]);
    }
}
