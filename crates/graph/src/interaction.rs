//! The bipartite user–item interaction graph.

use std::collections::HashSet;

use graphaug_sparse::{bipartite_adjacency, sym_norm, Csr};

/// A user id in `0..n_users`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u32);

/// An item id in `0..n_items`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ItemId(pub u32);

/// A violated [`InteractionGraph`] structural invariant, reported by
/// [`InteractionGraph::validate`].
///
/// The constructor establishes these invariants, so a violation means the
/// graph bytes were produced elsewhere (a deserialized checkpoint, a future
/// zero-copy loader) or memory was corrupted — exactly the situations a
/// fault-tolerant runtime wants to catch before training on garbage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphInvariantError {
    /// An edge references a user id `≥ n_users`.
    UserOutOfRange {
        /// The offending user id.
        user: u32,
        /// The graph's user count.
        n_users: usize,
    },
    /// An edge references an item id `≥ n_items`.
    ItemOutOfRange {
        /// The offending item id.
        item: u32,
        /// The graph's item count.
        n_items: usize,
    },
    /// The edge list is not strictly sorted `(user, item)` ascending.
    UnsortedEdges {
        /// Index of the first out-of-order edge.
        index: usize,
    },
    /// The same `(user, item)` pair appears twice.
    DuplicateEdge {
        /// The duplicated edge's user.
        user: u32,
        /// The duplicated edge's item.
        item: u32,
    },
    /// A CSR row disagrees with the edge list (unsorted columns, wrong
    /// degree, or differing items).
    CsrRowMismatch {
        /// The user whose CSR row is inconsistent.
        user: u32,
    },
    /// Total CSR entries differ from the edge count.
    CountMismatch {
        /// Edges in the edge list.
        edges: usize,
        /// Entries across all CSR rows.
        csr: usize,
    },
}

impl std::fmt::Display for GraphInvariantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphInvariantError::UserOutOfRange { user, n_users } => {
                write!(f, "user id {user} out of range (n_users = {n_users})")
            }
            GraphInvariantError::ItemOutOfRange { item, n_items } => {
                write!(f, "item id {item} out of range (n_items = {n_items})")
            }
            GraphInvariantError::UnsortedEdges { index } => {
                write!(f, "edge list unsorted at index {index}")
            }
            GraphInvariantError::DuplicateEdge { user, item } => {
                write!(f, "duplicate edge ({user}, {item})")
            }
            GraphInvariantError::CsrRowMismatch { user } => {
                write!(f, "CSR row for user {user} disagrees with the edge list")
            }
            GraphInvariantError::CountMismatch { edges, csr } => {
                write!(f, "edge count {edges} != CSR entry count {csr}")
            }
        }
    }
}

impl std::error::Error for GraphInvariantError {}

/// An observed implicit-feedback interaction set between users and items.
///
/// Edges are stored deduplicated and sorted `(user, item)`. All downstream
/// structures — bipartite adjacency, per-user item lists, degree buckets —
/// derive from this type.
#[derive(Clone, Debug)]
pub struct InteractionGraph {
    n_users: usize,
    n_items: usize,
    edges: Vec<(u32, u32)>,
    /// CSR of users × items (one row per user).
    user_items: Csr,
}

impl InteractionGraph {
    /// Builds a graph from raw interaction pairs; duplicates are removed.
    pub fn new(n_users: usize, n_items: usize, mut edges: Vec<(u32, u32)>) -> Self {
        for &(u, v) in &edges {
            assert!(
                (u as usize) < n_users && (v as usize) < n_items,
                "edge ({u},{v}) out of bounds"
            );
        }
        edges.sort_unstable();
        edges.dedup();
        let user_items = Csr::from_coo(
            n_users,
            n_items,
            edges.iter().map(|&(u, v)| (u, v, 1.0)).collect(),
        );
        InteractionGraph {
            n_users,
            n_items,
            edges,
            user_items,
        }
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Total node count of the bipartite graph (`I + J`).
    pub fn n_nodes(&self) -> usize {
        self.n_users + self.n_items
    }

    /// Number of distinct interactions.
    pub fn n_interactions(&self) -> usize {
        self.edges.len()
    }

    /// Interaction density `|E| / (I · J)`.
    pub fn density(&self) -> f64 {
        self.edges.len() as f64 / (self.n_users as f64 * self.n_items as f64)
    }

    /// The deduplicated, sorted `(user, item)` edge list.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Items interacted by `u` (sorted).
    pub fn items_of(&self, u: usize) -> &[u32] {
        self.user_items.row(u).0
    }

    /// True when `(u, v)` is an observed interaction.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.items_of(u as usize).binary_search(&v).is_ok()
    }

    /// Per-user interaction counts.
    pub fn user_degrees(&self) -> Vec<usize> {
        self.user_items.row_degrees()
    }

    /// Per-item interaction counts.
    pub fn item_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.n_items];
        for &(_, v) in &self.edges {
            deg[v as usize] += 1;
        }
        deg
    }

    /// The symmetric `(I+J) × (I+J)` bipartite adjacency (unnormalized).
    pub fn adjacency(&self) -> Csr {
        bipartite_adjacency(self.n_users, self.n_items, &self.edges)
    }

    /// `D^{-1/2}(A + I)D^{-1/2}` over the bipartite adjacency — the Ã used by
    /// every GNN encoder (paper Sec. III-C).
    pub fn normalized_adjacency(&self) -> Csr {
        sym_norm(&self.adjacency(), true)
    }

    /// Same, without self-loops (LightGCN-style propagation).
    pub fn normalized_adjacency_plain(&self) -> Csr {
        sym_norm(&self.adjacency(), false)
    }

    /// Checks every structural invariant the rest of the workspace assumes:
    /// ids in range, a strictly sorted deduplicated edge list, and CSR rows
    /// that agree with the edge list in both membership and degree. Dataset
    /// presets and the training runtime call this at startup so a malformed
    /// graph fails loudly before any compute is spent on it.
    pub fn validate(&self) -> Result<(), GraphInvariantError> {
        for (i, &(u, v)) in self.edges.iter().enumerate() {
            if (u as usize) >= self.n_users {
                return Err(GraphInvariantError::UserOutOfRange {
                    user: u,
                    n_users: self.n_users,
                });
            }
            if (v as usize) >= self.n_items {
                return Err(GraphInvariantError::ItemOutOfRange {
                    item: v,
                    n_items: self.n_items,
                });
            }
            if i > 0 {
                let prev = self.edges[i - 1];
                if prev == (u, v) {
                    return Err(GraphInvariantError::DuplicateEdge { user: u, item: v });
                }
                if prev > (u, v) {
                    return Err(GraphInvariantError::UnsortedEdges { index: i });
                }
            }
        }
        // CSR rows must mirror the edge list exactly: same per-user degree,
        // same (sorted) items, same total count.
        let mut cursor = 0usize;
        let mut csr_total = 0usize;
        for u in 0..self.n_users {
            let row = self.user_items.row(u).0;
            csr_total += row.len();
            if !row.windows(2).all(|w| w[0] < w[1]) {
                return Err(GraphInvariantError::CsrRowMismatch { user: u as u32 });
            }
            let end = cursor
                + self.edges[cursor..]
                    .iter()
                    .take_while(|&&(eu, _)| eu as usize == u)
                    .count();
            let from_edges: Vec<u32> = self.edges[cursor..end].iter().map(|&(_, v)| v).collect();
            if row != from_edges.as_slice() {
                return Err(GraphInvariantError::CsrRowMismatch { user: u as u32 });
            }
            cursor = end;
        }
        if csr_total != self.edges.len() || cursor != self.edges.len() {
            return Err(GraphInvariantError::CountMismatch {
                edges: self.edges.len(),
                csr: csr_total,
            });
        }
        Ok(())
    }

    /// Returns a new graph keeping only edges accepted by `keep`.
    pub fn filter_edges(&self, keep: impl Fn(u32, u32) -> bool) -> InteractionGraph {
        InteractionGraph::new(
            self.n_users,
            self.n_items,
            self.edges
                .iter()
                .copied()
                .filter(|&(u, v)| keep(u, v))
                .collect(),
        )
    }

    /// Returns a new graph with additional edges merged in (duplicates
    /// against existing interactions are dropped).
    pub fn with_extra_edges(&self, extra: &[(u32, u32)]) -> InteractionGraph {
        let mut edges = self.edges.clone();
        let existing: HashSet<(u32, u32)> = edges.iter().copied().collect();
        for &e in extra {
            if !existing.contains(&e) {
                edges.push(e);
            }
        }
        InteractionGraph::new(self.n_users, self.n_items, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> InteractionGraph {
        InteractionGraph::new(3, 4, vec![(0, 1), (0, 3), (1, 0), (2, 2), (2, 3), (0, 1)])
    }

    #[test]
    fn dedups_and_sorts_edges() {
        let g = g();
        assert_eq!(g.n_interactions(), 5);
        assert_eq!(g.edges()[0], (0, 1));
        assert!(g.has_edge(0, 3));
        assert!(!g.has_edge(1, 3));
    }

    #[test]
    fn degrees_match_edges() {
        let g = g();
        assert_eq!(g.user_degrees(), vec![2, 1, 2]);
        assert_eq!(g.item_degrees(), vec![1, 1, 1, 2]);
    }

    #[test]
    fn density_formula() {
        let g = g();
        assert!((g.density() - 5.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn adjacency_shapes_and_symmetry() {
        let g = g();
        let adj = g.adjacency();
        assert_eq!(adj.n_rows(), 7);
        assert_eq!(adj.nnz(), 10);
        let norm = g.normalized_adjacency();
        norm.check_invariants().unwrap();
        // Self-loops present.
        for i in 0..7 {
            let (cols, _) = norm.row(i);
            assert!(cols.contains(&(i as u32)));
        }
    }

    #[test]
    fn filter_and_extend() {
        let g = g();
        let filtered = g.filter_edges(|u, _| u != 0);
        assert_eq!(filtered.n_interactions(), 3);
        let extended = g.with_extra_edges(&[(1, 1), (0, 1)]);
        assert_eq!(extended.n_interactions(), 6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_bounds_edges() {
        InteractionGraph::new(1, 1, vec![(0, 1)]);
    }

    #[test]
    fn validate_accepts_constructor_built_graphs() {
        g().validate().unwrap();
    }

    #[test]
    fn validate_catches_corrupted_edge_lists() {
        // The constructor upholds the invariants, so corrupt the private
        // fields directly — emulating a graph deserialized from bad bytes.
        let mut bad = g();
        bad.edges[0].1 = 99; // item out of range, CSR now also disagrees
        assert_eq!(
            bad.validate(),
            Err(GraphInvariantError::ItemOutOfRange {
                item: 99,
                n_items: 4
            })
        );

        let mut dup = g();
        dup.edges[1] = dup.edges[0];
        assert!(matches!(
            dup.validate(),
            Err(GraphInvariantError::DuplicateEdge { .. })
        ));

        let mut unsorted = g();
        unsorted.edges.swap(0, 4);
        assert!(matches!(
            unsorted.validate(),
            Err(GraphInvariantError::UnsortedEdges { .. })
        ));

        let mut missing = g();
        missing.edges.pop(); // CSR still holds the removed edge
        assert!(matches!(
            missing.validate(),
            Err(GraphInvariantError::CsrRowMismatch { .. })
        ));
    }
}
