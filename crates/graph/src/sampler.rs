//! Pairwise (BPR) triplet sampling and negative sampling.

use graphaug_rng::StdRng;

use crate::interaction::InteractionGraph;

/// A `(user, positive item, negative item)` training triplet for the BPR
/// loss (paper Eq. 15).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Triplet {
    /// The anchor user.
    pub user: u32,
    /// An item the user interacted with.
    pub pos: u32,
    /// An item the user did not interact with.
    pub neg: u32,
}

/// Samples BPR triplets and uniform negatives from a training graph.
///
/// Positive edges are drawn uniformly from the observed interactions; the
/// negative item is rejection-sampled until it is unobserved for the user
/// (bounded retries protect against pathological near-complete users).
pub struct TripletSampler<'g> {
    graph: &'g InteractionGraph,
    rng: StdRng,
}

impl<'g> TripletSampler<'g> {
    /// Creates a sampler over `graph` with a fixed seed.
    pub fn new(graph: &'g InteractionGraph, seed: u64) -> Self {
        assert!(
            graph.n_interactions() > 0,
            "cannot sample from an empty graph"
        );
        assert!(graph.n_items() > 1, "need at least two items for negatives");
        TripletSampler {
            graph,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws one triplet.
    pub fn sample(&mut self) -> Triplet {
        let edges = self.graph.edges();
        let (user, pos) = edges[self.rng.random_range(0..edges.len())];
        let neg = self.sample_negative(user);
        Triplet { user, pos, neg }
    }

    /// Draws a batch of triplets as parallel index vectors
    /// `(users, positives, negatives)` — the layout the tape's `gather_rows`
    /// wants.
    pub fn sample_batch(&mut self, n: usize) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        let mut users = Vec::with_capacity(n);
        let mut pos = Vec::with_capacity(n);
        let mut neg = Vec::with_capacity(n);
        for _ in 0..n {
            let t = self.sample();
            users.push(t.user);
            pos.push(t.pos);
            neg.push(t.neg);
        }
        (users, pos, neg)
    }

    /// Uniformly samples an item the user has not interacted with. Falls
    /// back to a uniform item after 100 rejections (only relevant for users
    /// interacting with nearly every item).
    pub fn sample_negative(&mut self, user: u32) -> u32 {
        for _ in 0..100 {
            let cand = self.rng.random_range(0..self.graph.n_items() as u32);
            if !self.graph.has_edge(user, cand) {
                return cand;
            }
        }
        self.rng.random_range(0..self.graph.n_items() as u32)
    }

    /// Uniformly samples `n` distinct users that have at least one
    /// interaction (for per-epoch contrastive batches).
    pub fn sample_active_users(&mut self, n: usize) -> Vec<u32> {
        let active: Vec<u32> = (0..self.graph.n_users() as u32)
            .filter(|&u| !self.graph.items_of(u as usize).is_empty())
            .collect();
        let n = n.min(active.len());
        // Partial Fisher–Yates over a copy.
        let mut pool = active;
        for i in 0..n {
            let j = self.rng.random_range(i..pool.len());
            pool.swap(i, j);
        }
        pool.truncate(n);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> InteractionGraph {
        InteractionGraph::new(4, 6, vec![(0, 0), (0, 1), (1, 2), (2, 3), (2, 4), (3, 5)])
    }

    #[test]
    fn triplets_are_valid() {
        let g = g();
        let mut s = TripletSampler::new(&g, 9);
        for _ in 0..200 {
            let t = s.sample();
            assert!(g.has_edge(t.user, t.pos), "pos must be observed");
            assert!(!g.has_edge(t.user, t.neg), "neg must be unobserved");
        }
    }

    #[test]
    fn batches_have_consistent_layout() {
        let g = g();
        let mut s = TripletSampler::new(&g, 9);
        let (u, p, n) = s.sample_batch(32);
        assert_eq!(u.len(), 32);
        assert_eq!(p.len(), 32);
        assert_eq!(n.len(), 32);
        for i in 0..32 {
            assert!(g.has_edge(u[i], p[i]));
            assert!(!g.has_edge(u[i], n[i]));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let g = g();
        let a = TripletSampler::new(&g, 5).sample_batch(10);
        let b = TripletSampler::new(&g, 5).sample_batch(10);
        assert_eq!(a, b);
    }

    #[test]
    fn active_user_sampling_excludes_cold_users() {
        let g = InteractionGraph::new(5, 3, vec![(0, 0), (2, 1), (4, 2)]);
        let mut s = TripletSampler::new(&g, 1);
        let users = s.sample_active_users(10);
        assert_eq!(users.len(), 3);
        for u in users {
            assert!(!g.items_of(u as usize).is_empty());
        }
    }

    #[test]
    fn near_complete_user_still_gets_negative() {
        // User 0 interacts with every item except item 4.
        let g = InteractionGraph::new(1, 5, vec![(0, 0), (0, 1), (0, 2), (0, 3)]);
        let mut s = TripletSampler::new(&g, 3);
        let mut saw_valid = false;
        for _ in 0..50 {
            if s.sample_negative(0) == 4 {
                saw_valid = true;
            }
        }
        assert!(saw_valid);
    }
}
