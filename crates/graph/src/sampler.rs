//! Pairwise (BPR) triplet sampling and negative sampling.
//!
//! Batch sampling is parallel and reproducible: the batch is split into the
//! fixed chunk grid of `graphaug-par` and every chunk draws from its own
//! xoshiro256++ stream, seeded as `SplitMix64(seed ⊕ stream_index)` with a
//! monotonically increasing per-sampler stream counter. The chunk grid and
//! the seed derivation depend only on the batch size and on how many chunks
//! the sampler has issued before — never on `GRAPHAUG_THREADS` — so a batch
//! is bit-identical for any thread count. The serial entry points
//! ([`TripletSampler::sample`], [`TripletSampler::sample_active_users`])
//! keep their own single stream; chunked batches are *statistically*
//! equivalent to a loop of serial draws, not stream-identical (see
//! DESIGN.md, "SIMD lanes and RNG stream splitting").

use graphaug_rng::StdRng;

use crate::interaction::InteractionGraph;

/// A `(user, positive item, negative item)` training triplet for the BPR
/// loss (paper Eq. 15).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Triplet {
    /// The anchor user.
    pub user: u32,
    /// An item the user interacted with.
    pub pos: u32,
    /// An item the user did not interact with.
    pub neg: u32,
}

/// Serializable sampler state: everything [`TripletSampler`] needs besides
/// the graph itself to resume sampling bit-identically after a restart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SamplerState {
    /// Base seed the per-chunk batch streams derive from.
    pub seed: u64,
    /// Next unused chunk-stream index.
    pub next_stream: u64,
    /// Raw xoshiro256++ state of the serial stream.
    pub rng: [u64; 4],
}

/// Samples BPR triplets and uniform negatives from a training graph.
///
/// Positive edges are drawn uniformly from the observed interactions; the
/// negative item is drawn *exactly* uniformly from the user's complement
/// item set by rank-mapping a draw from `[0, n_items − deg(u))` through the
/// user's sorted item list — no rejection loop, constant draw count per
/// triplet (which is what keeps the per-chunk streams aligned).
pub struct TripletSampler<'g> {
    graph: &'g InteractionGraph,
    /// The serial stream: `sample`, `sample_negative`,
    /// `sample_active_users`.
    rng: StdRng,
    /// Base seed for deriving per-chunk batch streams.
    seed: u64,
    /// Next unused chunk-stream index; bumped by every `sample_batch`.
    next_stream: u64,
    /// Users with ≥ 1 interaction, cached at construction (the list was
    /// previously rebuilt and re-filtered on every call).
    active_users: Vec<u32>,
    /// Per-user complement-set size `n_items − deg(u)`, the only per-user
    /// quantity the chunked negative sampler needs besides the graph's own
    /// sorted item lists (whose `indptr` is the edge CDF).
    comp_counts: Vec<u32>,
}

impl<'g> TripletSampler<'g> {
    /// Creates a sampler over `graph` with a fixed seed.
    pub fn new(graph: &'g InteractionGraph, seed: u64) -> Self {
        assert!(
            graph.n_interactions() > 0,
            "cannot sample from an empty graph"
        );
        assert!(graph.n_items() > 1, "need at least two items for negatives");
        let n_items = graph.n_items() as u32;
        let mut active_users = Vec::new();
        let mut comp_counts = Vec::with_capacity(graph.n_users());
        for u in 0..graph.n_users() {
            let deg = graph.items_of(u).len() as u32;
            if deg > 0 {
                active_users.push(u as u32);
            }
            comp_counts.push(n_items - deg.min(n_items));
        }
        TripletSampler {
            graph,
            rng: StdRng::seed_from_u64(seed),
            seed,
            next_stream: 0,
            active_users,
            comp_counts,
        }
    }

    /// Captures the sampler's full RNG state for checkpointing.
    pub fn state(&self) -> SamplerState {
        SamplerState {
            seed: self.seed,
            next_stream: self.next_stream,
            rng: self.rng.state(),
        }
    }

    /// Rebuilds a sampler over `graph` resuming from a captured state: the
    /// next [`TripletSampler::sample_batch`] draws exactly the batch the
    /// snapshotted sampler would have drawn next, for any thread count.
    pub fn from_state(graph: &'g InteractionGraph, state: SamplerState) -> Self {
        let mut s = TripletSampler::new(graph, state.seed);
        s.next_stream = state.next_stream;
        s.rng = StdRng::from_state(state.rng);
        s
    }

    /// Draws one triplet from the serial stream.
    pub fn sample(&mut self) -> Triplet {
        let edges = self.graph.edges();
        let (user, pos) = edges[self.rng.random_range(0..edges.len())];
        let neg = self.sample_negative(user);
        Triplet { user, pos, neg }
    }

    /// Draws a batch of triplets as parallel index vectors
    /// `(users, positives, negatives)` — the layout the tape's `gather_rows`
    /// wants.
    ///
    /// The batch fans out over [`graphaug_par::parallel_chunks`] with one
    /// derived stream per chunk; output is bit-identical for any
    /// `GRAPHAUG_THREADS` and changes from batch to batch (the stream
    /// counter advances by the number of chunks issued).
    pub fn sample_batch(&mut self, n: usize) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        let mut users = vec![0u32; n];
        let mut pos = vec![0u32; n];
        let mut neg = vec![0u32; n];
        let (chunk_len, n_chunks) = graphaug_par::fixed_chunks(n);
        let base = self.next_stream;
        self.next_stream += n_chunks as u64;
        let seed = self.seed;
        let graph = self.graph;
        let comp_counts = &self.comp_counts;
        let edges = graph.edges();
        let pos_ptr = graphaug_par::SendMutPtr::new(&mut pos);
        let neg_ptr = graphaug_par::SendMutPtr::new(&mut neg);
        graphaug_par::parallel_chunks(&mut users, chunk_len, |ci, uchunk| {
            let start = ci * chunk_len;
            // Safety: chunk `ci` covers exactly `start..start + uchunk.len()`
            // of every output vector, and chunks are disjoint.
            let pchunk = unsafe { pos_ptr.slice_mut(start, uchunk.len()) };
            let nchunk = unsafe { neg_ptr.slice_mut(start, uchunk.len()) };
            let mut rng = StdRng::stream(seed, base + ci as u64);
            for i in 0..uchunk.len() {
                let (u, p) = edges[rng.random_range(0..edges.len())];
                uchunk[i] = u;
                pchunk[i] = p;
                nchunk[i] = complement_draw(
                    &mut rng,
                    graph.items_of(u as usize),
                    comp_counts[u as usize],
                    graph.n_items() as u32,
                );
            }
        });
        (users, pos, neg)
    }

    /// Uniformly samples an item the user has not interacted with, from the
    /// serial stream. Exact complement draw; falls back to a uniform item
    /// only when the user has interacted with *every* item.
    pub fn sample_negative(&mut self, user: u32) -> u32 {
        complement_draw(
            &mut self.rng,
            self.graph.items_of(user as usize),
            self.comp_counts[user as usize],
            self.graph.n_items() as u32,
        )
    }

    /// Uniformly samples `n` distinct users that have at least one
    /// interaction (for per-epoch contrastive batches). The active-user list
    /// is cached at construction.
    pub fn sample_active_users(&mut self, n: usize) -> Vec<u32> {
        let n = n.min(self.active_users.len());
        // Partial Fisher–Yates over a copy.
        let mut pool = self.active_users.clone();
        for i in 0..n {
            let j = self.rng.random_range(i..pool.len());
            pool.swap(i, j);
        }
        pool.truncate(n);
        pool
    }
}

/// Draws uniformly from `{0..n_items} \ items` by rank-mapping `r ∈
/// [0, comp)` through the sorted `items` list: the result is `r + j` where
/// `j` counts the user's items that precede it. `items[i] − i` is
/// non-decreasing for a strictly sorted list, so `j` is a binary search.
#[inline]
fn complement_draw(rng: &mut StdRng, items: &[u32], comp: u32, n_items: u32) -> u32 {
    if comp == 0 {
        // The user interacted with every item; no valid negative exists.
        return rng.random_range(0..n_items);
    }
    let r = rng.random_range(0..comp);
    let (mut lo, mut hi) = (0usize, items.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        if items[mid] - mid as u32 <= r {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    r + lo as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> InteractionGraph {
        InteractionGraph::new(4, 6, vec![(0, 0), (0, 1), (1, 2), (2, 3), (2, 4), (3, 5)])
    }

    #[test]
    fn triplets_are_valid() {
        let g = g();
        let mut s = TripletSampler::new(&g, 9);
        for _ in 0..200 {
            let t = s.sample();
            assert!(g.has_edge(t.user, t.pos), "pos must be observed");
            assert!(!g.has_edge(t.user, t.neg), "neg must be unobserved");
        }
    }

    #[test]
    fn batches_have_consistent_layout() {
        let g = g();
        let mut s = TripletSampler::new(&g, 9);
        let (u, p, n) = s.sample_batch(32);
        assert_eq!(u.len(), 32);
        assert_eq!(p.len(), 32);
        assert_eq!(n.len(), 32);
        for i in 0..32 {
            assert!(g.has_edge(u[i], p[i]));
            assert!(!g.has_edge(u[i], n[i]));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let g = g();
        let a = TripletSampler::new(&g, 5).sample_batch(10);
        let b = TripletSampler::new(&g, 5).sample_batch(10);
        assert_eq!(a, b);
    }

    #[test]
    fn successive_batches_differ() {
        let g = g();
        let mut s = TripletSampler::new(&g, 5);
        let a = s.sample_batch(64);
        let b = s.sample_batch(64);
        assert_ne!(a, b, "stream counter must advance between batches");
    }

    #[test]
    fn state_round_trip_resumes_batches_bit_identically() {
        let g = g();
        let mut s = TripletSampler::new(&g, 5);
        s.sample_batch(64);
        s.sample(); // advance the serial stream too
        let saved = s.state();
        let expect_batch = s.sample_batch(64);
        let expect_serial = s.sample();
        let mut resumed = TripletSampler::from_state(&g, saved);
        assert_eq!(resumed.sample_batch(64), expect_batch);
        assert_eq!(resumed.sample(), expect_serial);
    }

    #[test]
    fn active_user_sampling_excludes_cold_users() {
        let g = InteractionGraph::new(5, 3, vec![(0, 0), (2, 1), (4, 2)]);
        let mut s = TripletSampler::new(&g, 1);
        let users = s.sample_active_users(10);
        assert_eq!(users.len(), 3);
        for u in users {
            assert!(!g.items_of(u as usize).is_empty());
        }
    }

    #[test]
    fn near_complete_user_still_gets_negative() {
        // User 0 interacts with every item except item 4.
        let g = InteractionGraph::new(1, 5, vec![(0, 0), (0, 1), (0, 2), (0, 3)]);
        let mut s = TripletSampler::new(&g, 3);
        for _ in 0..50 {
            assert_eq!(s.sample_negative(0), 4, "only valid negative is item 4");
        }
    }

    #[test]
    fn complement_draw_is_exactly_uniform_over_the_complement() {
        // Items {1, 3, 4} of 7 → complement {0, 2, 5, 6}.
        let items = [1u32, 3, 4];
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 7];
        for _ in 0..4000 {
            let v = complement_draw(&mut rng, &items, 4, 7);
            counts[v as usize] += 1;
        }
        assert_eq!(counts[1] + counts[3] + counts[4], 0, "never draws an item");
        for &c in &[counts[0], counts[2], counts[5], counts[6]] {
            let expected = 1000.0f64;
            assert!(
                ((c as f64) - expected).abs() < 5.0 * expected.sqrt(),
                "counts {counts:?}"
            );
        }
    }
}
