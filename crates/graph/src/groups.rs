//! Degree-based user grouping for the skewed-distribution experiment
//! (paper Table V).
//!
//! The paper splits evaluation users into buckets by their number of
//! training interactions (0–10, 10–20, …) and reports per-bucket metrics to
//! show how each model handles long-tail users.

use crate::interaction::InteractionGraph;

/// A half-open degree bucket `[lo, hi)` with its member users.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegreeGroup {
    /// Inclusive lower degree bound.
    pub lo: usize,
    /// Exclusive upper degree bound (`usize::MAX` for the last bucket).
    pub hi: usize,
    /// Users whose training degree falls in `[lo, hi)`.
    pub users: Vec<u32>,
}

impl DegreeGroup {
    /// Human-readable label, e.g. `"10-20"`.
    pub fn label(&self) -> String {
        if self.hi == usize::MAX {
            format!("{}+", self.lo)
        } else {
            format!("{}-{}", self.lo, self.hi)
        }
    }
}

/// Buckets users of `train` by degree at the given boundaries.
///
/// `boundaries = [10, 20, 30]` produces groups `[0,10) [10,20) [20,30)
/// [30,∞)`. Users with zero training interactions are excluded (they cannot
/// be evaluated).
pub fn group_users_by_degree(train: &InteractionGraph, boundaries: &[usize]) -> Vec<DegreeGroup> {
    assert!(
        boundaries.windows(2).all(|w| w[0] < w[1]),
        "boundaries must increase"
    );
    let deg = train.user_degrees();
    let mut edges: Vec<usize> = Vec::with_capacity(boundaries.len() + 2);
    edges.push(0);
    edges.extend_from_slice(boundaries);
    edges.push(usize::MAX);
    let mut groups: Vec<DegreeGroup> = edges
        .windows(2)
        .map(|w| DegreeGroup {
            lo: w[0],
            hi: w[1],
            users: Vec::new(),
        })
        .collect();
    for (u, &d) in deg.iter().enumerate() {
        if d == 0 {
            continue;
        }
        let gi = groups
            .iter()
            .position(|g| d >= g.lo && d < g.hi)
            .expect("degree buckets cover all positive degrees");
        groups[gi].users.push(u as u32);
    }
    groups
}

/// The paper's five-group scheme: `[0,10) … [40,50)` plus an implicit tail.
/// Returns only the first five buckets, matching Table V's columns.
pub fn paper_degree_groups(train: &InteractionGraph) -> Vec<DegreeGroup> {
    let mut g = group_users_by_degree(train, &[10, 20, 30, 40, 50]);
    g.truncate(5);
    g
}

/// Buckets *items* by training degree (popularity) — the item-side half of
/// the paper's Table V skew study. Items with zero interactions are
/// excluded.
pub fn group_items_by_degree(train: &InteractionGraph, boundaries: &[usize]) -> Vec<DegreeGroup> {
    assert!(
        boundaries.windows(2).all(|w| w[0] < w[1]),
        "boundaries must increase"
    );
    let deg = train.item_degrees();
    let mut edges: Vec<usize> = Vec::with_capacity(boundaries.len() + 2);
    edges.push(0);
    edges.extend_from_slice(boundaries);
    edges.push(usize::MAX);
    let mut groups: Vec<DegreeGroup> = edges
        .windows(2)
        .map(|w| DegreeGroup {
            lo: w[0],
            hi: w[1],
            users: Vec::new(),
        })
        .collect();
    for (v, &d) in deg.iter().enumerate() {
        if d == 0 {
            continue;
        }
        let gi = groups
            .iter()
            .position(|g| d >= g.lo && d < g.hi)
            .expect("degree buckets cover all positive degrees");
        groups[gi].users.push(v as u32);
    }
    groups
}

/// The paper's five item buckets (`[0,10) … [40,50)`), truncated to five.
pub fn paper_item_degree_groups(train: &InteractionGraph) -> Vec<DegreeGroup> {
    let mut g = group_items_by_degree(train, &[10, 20, 30, 40, 50]);
    g.truncate(5);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_with_degrees(degrees: &[usize]) -> InteractionGraph {
        let n_items = degrees.iter().copied().max().unwrap_or(1).max(1);
        let mut edges = Vec::new();
        for (u, &d) in degrees.iter().enumerate() {
            for v in 0..d {
                edges.push((u as u32, v as u32));
            }
        }
        InteractionGraph::new(degrees.len(), n_items, edges)
    }

    #[test]
    fn buckets_partition_active_users() {
        let g = graph_with_degrees(&[5, 15, 25, 0, 45]);
        let groups = group_users_by_degree(&g, &[10, 20, 30, 40]);
        assert_eq!(groups.len(), 5);
        assert_eq!(groups[0].users, vec![0]);
        assert_eq!(groups[1].users, vec![1]);
        assert_eq!(groups[2].users, vec![2]);
        assert!(groups[3].users.is_empty());
        assert_eq!(groups[4].users, vec![4]);
        // User 3 (degree 0) appears nowhere.
        let total: usize = groups.iter().map(|g| g.users.len()).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn labels_are_readable() {
        let g = graph_with_degrees(&[1]);
        let groups = group_users_by_degree(&g, &[10]);
        assert_eq!(groups[0].label(), "0-10");
        assert_eq!(groups[1].label(), "10+");
    }

    #[test]
    fn boundary_degrees_land_in_upper_bucket() {
        let g = graph_with_degrees(&[10]);
        let groups = group_users_by_degree(&g, &[10, 20]);
        assert!(groups[0].users.is_empty());
        assert_eq!(groups[1].users, vec![0]);
    }

    #[test]
    fn paper_groups_have_five_buckets() {
        let g = graph_with_degrees(&[3, 12, 22, 33, 44, 60]);
        let groups = paper_degree_groups(&g);
        assert_eq!(groups.len(), 5);
        assert_eq!(groups[4].label(), "40-50");
        // Degree-60 user falls outside the reported buckets.
        let total: usize = groups.iter().map(|g| g.users.len()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn item_groups_bucket_by_popularity() {
        // 4 items with degrees 3, 12, 0, 25.
        let mut edges = Vec::new();
        for u in 0..3u32 {
            edges.push((u, 0));
        }
        for u in 0..12u32 {
            edges.push((u, 1));
        }
        for u in 0..25u32 {
            edges.push((u, 3));
        }
        let g = InteractionGraph::new(25, 4, edges);
        let groups = group_items_by_degree(&g, &[10, 20]);
        assert_eq!(groups[0].users, vec![0]);
        assert_eq!(groups[1].users, vec![1]);
        assert_eq!(groups[2].users, vec![3]);
        // Item 2 (degree 0) excluded.
        assert_eq!(groups.iter().map(|x| x.users.len()).sum::<usize>(), 3);
    }

    #[test]
    fn paper_item_groups_have_five_buckets() {
        let g = graph_with_degrees(&[15, 15, 15]);
        let groups = paper_item_degree_groups(&g);
        assert_eq!(groups.len(), 5);
    }

    #[test]
    #[should_panic(expected = "boundaries must increase")]
    fn rejects_unsorted_boundaries() {
        let g = graph_with_degrees(&[1]);
        group_users_by_degree(&g, &[20, 10]);
    }
}
