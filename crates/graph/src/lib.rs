//! Bipartite interaction-graph domain layer for the GraphAug reproduction.
//!
//! This crate owns everything about the *data topology* of implicit-feedback
//! recommendation:
//!
//! * [`InteractionGraph`] — deduplicated user–item edges with CSR views and
//!   normalized bipartite adjacency construction;
//! * [`TrainTestSplit`] — seeded per-user holdout splitting;
//! * [`TripletSampler`] — BPR `(user, pos, neg)` batch sampling (Eq. 15);
//! * [`inject_fake_edges`] — structural-noise corruption for the robustness
//!   study (Fig. 3);
//! * [`group_users_by_degree`] — degree-bucketed evaluation populations for
//!   the skewed-distribution study (Table V).

pub mod groups;
pub mod interaction;
pub mod noise;
pub mod sampler;
pub mod split;

pub use groups::{
    group_items_by_degree, group_users_by_degree, paper_degree_groups, paper_item_degree_groups,
    DegreeGroup,
};
pub use interaction::{GraphInvariantError, InteractionGraph, ItemId, UserId};
pub use noise::inject_fake_edges;
pub use sampler::{SamplerState, Triplet, TripletSampler};
pub use split::TrainTestSplit;
