//! Structural-noise injection (paper Fig. 3).
//!
//! The robustness experiment corrupts the interaction graph topology by
//! adding randomly generated fake user–item edges at a chosen proportion of
//! the observed edge count, then measures how much each model's accuracy
//! degrades relative to its clean-graph performance.

use graphaug_rng::StdRng;

use crate::interaction::InteractionGraph;

/// Returns a copy of `g` with `ratio · |E|` random fake edges added.
///
/// Fake edges are sampled uniformly over unobserved `(user, item)` pairs
/// (rejection sampling against both observed and already-injected edges), so
/// the corrupted graph has exactly `⌈ratio · |E|⌉` additional interactions
/// whenever the universe is large enough.
pub fn inject_fake_edges(g: &InteractionGraph, ratio: f64, seed: u64) -> InteractionGraph {
    assert!(ratio >= 0.0, "noise ratio must be non-negative");
    let target = (g.n_interactions() as f64 * ratio).ceil() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut injected: Vec<(u32, u32)> = Vec::with_capacity(target);
    let mut seen = std::collections::HashSet::new();
    let mut attempts = 0usize;
    let max_attempts = target.saturating_mul(50).max(1000);
    while injected.len() < target && attempts < max_attempts {
        attempts += 1;
        let u = rng.random_range(0..g.n_users() as u32);
        let v = rng.random_range(0..g.n_items() as u32);
        if g.has_edge(u, v) || !seen.insert((u, v)) {
            continue;
        }
        injected.push((u, v));
    }
    g.with_extra_edges(&injected)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> InteractionGraph {
        let mut edges = Vec::new();
        for u in 0..30u32 {
            for v in 0..5u32 {
                edges.push((u, (u + v) % 40));
            }
        }
        InteractionGraph::new(30, 40, edges)
    }

    #[test]
    fn injects_requested_count() {
        let base = g();
        let noisy = inject_fake_edges(&base, 0.1, 11);
        let want = (base.n_interactions() as f64 * 0.1).ceil() as usize;
        assert_eq!(noisy.n_interactions(), base.n_interactions() + want);
    }

    #[test]
    fn zero_ratio_is_identity() {
        let base = g();
        let same = inject_fake_edges(&base, 0.0, 1);
        assert_eq!(same.edges(), base.edges());
    }

    #[test]
    fn original_edges_are_preserved() {
        let base = g();
        let noisy = inject_fake_edges(&base, 0.25, 3);
        for &(u, v) in base.edges() {
            assert!(noisy.has_edge(u, v));
        }
    }

    #[test]
    fn injection_is_deterministic() {
        let base = g();
        let a = inject_fake_edges(&base, 0.2, 9);
        let b = inject_fake_edges(&base, 0.2, 9);
        assert_eq!(a.edges(), b.edges());
    }
}
