//! Synthetic implicit-feedback dataset generator.
//!
//! The paper evaluates on Gowalla / Retail Rocket / Amazon, which are not
//! redistributable here. This generator reproduces the *shape* properties
//! that drive relative model performance in GCL papers:
//!
//! * **cluster-structured preferences** — users and items belong to latent
//!   interest clusters, so collaborative filtering has real signal to learn;
//! * **power-law item popularity** — a Zipf-like weighting produces the
//!   long-tail item distribution behind popularity bias;
//! * **skewed user activity** — Pareto-distributed user degrees produce the
//!   0–10 / 10–20 / … buckets of the Table V study;
//! * **behavioural noise** — a fraction of each user's interactions is drawn
//!   from global popularity instead of their own cluster, emulating
//!   misclicks (the noise GraphAug's GIB augmentor is designed to filter).

use graphaug_rng::StdRng;

use graphaug_graph::InteractionGraph;

use crate::error::DataError;

/// Configuration for [`generate`]. Construct with [`SyntheticConfig::new`]
/// and customize through the builder methods.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Target number of distinct interactions (approximate: deduplication
    /// may land slightly below).
    pub target_interactions: usize,
    /// Number of latent interest clusters.
    pub n_clusters: usize,
    /// Zipf exponent for item popularity (0 = uniform).
    pub popularity_exponent: f64,
    /// Pareto shape for user activity (smaller = more skewed).
    pub activity_shape: f64,
    /// Fraction of interactions drawn off-cluster (behavioural noise).
    pub noise_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// A reasonable default configuration at the given scale.
    pub fn new(n_users: usize, n_items: usize, target_interactions: usize) -> Self {
        SyntheticConfig {
            n_users,
            n_items,
            target_interactions,
            n_clusters: 12,
            popularity_exponent: 0.8,
            activity_shape: 1.6,
            noise_fraction: 0.1,
            seed: 0x5eed,
        }
    }

    /// Sets the number of latent clusters.
    pub fn clusters(mut self, k: usize) -> Self {
        self.n_clusters = k;
        self
    }

    /// Sets the off-cluster noise fraction.
    pub fn noise(mut self, f: f64) -> Self {
        self.noise_fraction = f;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Sets the Pareto activity shape (user-degree skew).
    pub fn activity(mut self, shape: f64) -> Self {
        self.activity_shape = shape;
        self
    }
}

/// Weighted sampler over a prefix-sum table (binary search per draw).
struct PrefixSampler {
    cumulative: Vec<f64>,
    ids: Vec<u32>,
}

impl PrefixSampler {
    fn new(ids: Vec<u32>, weights: &[f64]) -> Self {
        debug_assert_eq!(ids.len(), weights.len());
        let mut cumulative = Vec::with_capacity(ids.len());
        let mut acc = 0f64;
        for &w in weights {
            acc += w;
            cumulative.push(acc);
        }
        PrefixSampler { cumulative, ids }
    }

    fn draw(&self, rng: &mut StdRng) -> u32 {
        let total = *self.cumulative.last().expect("non-empty sampler");
        let x = rng.random_range(0.0..total);
        let i = self.cumulative.partition_point(|&c| c <= x);
        self.ids[i.min(self.ids.len() - 1)]
    }

    fn len(&self) -> usize {
        self.ids.len()
    }
}

/// Generates an [`InteractionGraph`] according to `cfg`, panicking on an
/// unusable configuration — the one-liner shim over [`try_generate`].
pub fn generate(cfg: &SyntheticConfig) -> InteractionGraph {
    try_generate(cfg).unwrap_or_else(|e| panic!("synthetic generation failed: {e}"))
}

/// Generates an [`InteractionGraph`] according to `cfg`. Deterministic for a
/// fixed config; configuration problems are reported as
/// [`DataError::BadConfig`] instead of panicking.
pub fn try_generate(cfg: &SyntheticConfig) -> Result<InteractionGraph, DataError> {
    if cfg.n_clusters < 1 {
        return Err(DataError::BadConfig("need at least one cluster".into()));
    }
    if cfg.n_users == 0 || cfg.n_items == 0 {
        return Err(DataError::BadConfig(
            "need at least one user and one item".into(),
        ));
    }
    if !(0.0..=1.0).contains(&cfg.noise_fraction) {
        return Err(DataError::BadConfig(format!(
            "noise fraction {} not in [0, 1]",
            cfg.noise_fraction
        )));
    }
    let shape_ok = cfg.activity_shape.is_finite() && cfg.activity_shape > 0.0;
    if !shape_ok || !cfg.popularity_exponent.is_finite() {
        return Err(DataError::BadConfig(
            "activity shape must be positive and popularity exponent finite".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Cluster assignments.
    let user_cluster: Vec<usize> = (0..cfg.n_users)
        .map(|_| rng.random_range(0..cfg.n_clusters))
        .collect();
    let item_cluster: Vec<usize> = (0..cfg.n_items)
        .map(|_| rng.random_range(0..cfg.n_clusters))
        .collect();

    // Zipf popularity over a random permutation of items.
    let mut rank: Vec<u32> = (0..cfg.n_items as u32).collect();
    for i in (1..rank.len()).rev() {
        let j = rng.random_range(0..=i);
        rank.swap(i, j);
    }
    let mut popularity = vec![0f64; cfg.n_items];
    for (pos, &item) in rank.iter().enumerate() {
        popularity[item as usize] = 1.0 / ((pos + 1) as f64).powf(cfg.popularity_exponent);
    }

    // Per-cluster and global samplers.
    let mut cluster_items: Vec<Vec<u32>> = vec![Vec::new(); cfg.n_clusters];
    for (v, &c) in item_cluster.iter().enumerate() {
        cluster_items[c].push(v as u32);
    }
    let cluster_samplers: Vec<Option<PrefixSampler>> = cluster_items
        .iter()
        .map(|items| {
            if items.is_empty() {
                None
            } else {
                let w: Vec<f64> = items.iter().map(|&v| popularity[v as usize]).collect();
                Some(PrefixSampler::new(items.clone(), &w))
            }
        })
        .collect();
    let global_sampler = PrefixSampler::new((0..cfg.n_items as u32).collect(), &popularity);

    // Pareto-distributed user degrees scaled to the interaction target.
    let raw: Vec<f64> = (0..cfg.n_users)
        .map(|_| {
            let u: f64 = rng.random_range(1e-9..1.0);
            (1.0 - u).powf(-1.0 / cfg.activity_shape)
        })
        .collect();
    let raw_total: f64 = raw.iter().sum();
    let cap = (cfg.n_items * 4) / 5;
    let mut degrees: Vec<usize> = raw
        .iter()
        .map(|&w| {
            // Stochastic rounding keeps the expected total on target even
            // when most users have a fractional share below 1.
            let x = w / raw_total * cfg.target_interactions as f64;
            let mut d = x.floor() as usize;
            if rng.random_range(0.0..1.0) < x.fract() {
                d += 1;
            }
            d.clamp(1, cap)
        })
        .collect();
    // The cap truncates the heaviest Pareto draws; redistribute the lost
    // mass proportionally over uncapped users so the total stays on target.
    for _ in 0..4 {
        let total: usize = degrees.iter().sum();
        if total >= cfg.target_interactions {
            break;
        }
        let deficit = cfg.target_interactions - total;
        let open: f64 = degrees
            .iter()
            .filter(|&&d| d < cap)
            .map(|&d| d as f64)
            .sum();
        if open <= 0.0 {
            break;
        }
        for d in degrees.iter_mut() {
            if *d < cap {
                let bump = (*d as f64 / open * deficit as f64).round() as usize;
                *d = (*d + bump).min(cap);
            }
        }
    }

    // Draw interactions.
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(cfg.target_interactions);
    let mut chosen = std::collections::HashSet::new();
    for (u, &d) in degrees.iter().enumerate() {
        chosen.clear();
        let own = cluster_samplers[user_cluster[u]].as_ref();
        let mut guard = 0usize;
        while chosen.len() < d && guard < d * 40 {
            guard += 1;
            let noisy = rng.random_range(0.0..1.0) < cfg.noise_fraction;
            // Spill over to the global pool once the user's cluster is
            // nearly exhausted, so heavy users still reach their degree.
            let exhausted = own.is_none_or(|s| chosen.len() * 5 >= s.len() * 4);
            let v = match own {
                Some(s) if !noisy && !exhausted => s.draw(&mut rng),
                _ => global_sampler.draw(&mut rng),
            };
            if chosen.insert(v) {
                edges.push((u as u32, v));
            }
        }
    }
    Ok(InteractionGraph::new(cfg.n_users, cfg.n_items, edges))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SyntheticConfig {
        SyntheticConfig::new(200, 150, 3000).seed(7)
    }

    #[test]
    fn generator_hits_interaction_target_roughly() {
        let g = generate(&cfg());
        let n = g.n_interactions() as f64;
        assert!(
            (n - 3000.0).abs() < 3000.0 * 0.25,
            "interactions {n} too far from target"
        );
    }

    #[test]
    fn bad_configs_are_typed_errors_not_panics() {
        let no_clusters = SyntheticConfig::new(10, 10, 50).clusters(0);
        assert!(matches!(
            try_generate(&no_clusters),
            Err(DataError::BadConfig(_))
        ));
        let no_users = SyntheticConfig::new(0, 10, 50);
        assert!(matches!(
            try_generate(&no_users),
            Err(DataError::BadConfig(_))
        ));
        let bad_noise = SyntheticConfig::new(10, 10, 50).noise(1.5);
        assert!(matches!(
            try_generate(&bad_noise),
            Err(DataError::BadConfig(_))
        ));
        let mut bad_shape = SyntheticConfig::new(10, 10, 50);
        bad_shape.activity_shape = 0.0;
        assert!(matches!(
            try_generate(&bad_shape),
            Err(DataError::BadConfig(_))
        ));
    }

    #[test]
    fn generated_graphs_satisfy_the_structural_invariants() {
        try_generate(&cfg()).unwrap().validate().unwrap();
    }

    #[test]
    fn generator_is_deterministic() {
        let a = generate(&cfg());
        let b = generate(&cfg());
        assert_eq!(a.edges(), b.edges());
        let c = generate(&cfg().seed(8));
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn every_user_has_at_least_one_interaction() {
        let g = generate(&cfg());
        for u in 0..g.n_users() {
            assert!(!g.items_of(u).is_empty(), "user {u} is cold");
        }
    }

    #[test]
    fn degrees_are_skewed() {
        let g = generate(&SyntheticConfig::new(500, 300, 8000).seed(3));
        let mut deg = g.user_degrees();
        deg.sort_unstable();
        let median = deg[deg.len() / 2];
        let p95 = deg[(deg.len() * 95) / 100];
        assert!(
            p95 as f64 >= 2.0 * median as f64,
            "expected heavy tail, median {median} p95 {p95}"
        );
    }

    #[test]
    fn popularity_is_long_tailed() {
        let g = generate(&SyntheticConfig::new(500, 300, 8000).seed(3));
        let mut deg = g.item_degrees();
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = deg.iter().take(30).sum();
        let total: usize = deg.iter().sum();
        assert!(
            top10 as f64 > 0.2 * total as f64,
            "top-10% of items should absorb a large share of interactions"
        );
    }

    #[test]
    fn cluster_structure_is_present() {
        // Without noise, a user's items should concentrate in one cluster.
        let cfg = SyntheticConfig::new(100, 200, 2000)
            .clusters(4)
            .noise(0.0)
            .seed(5);
        let g = generate(&cfg);
        // Recompute item clusters with the same RNG stream shape: instead of
        // reaching into the generator, check cohesion statistically — items
        // co-interacted by a user should co-occur with other users far more
        // than random pairs would. Use a simple overlap statistic.
        let mut same_user_pairs = 0usize;
        let mut overlapping = 0usize;
        for u in 0..g.n_users().min(40) {
            let items = g.items_of(u);
            for w in (u + 1)..g.n_users().min(40) {
                let other = g.items_of(w);
                let inter = items.iter().filter(|v| other.contains(v)).count();
                same_user_pairs += 1;
                if inter >= 2 {
                    overlapping += 1;
                }
            }
        }
        assert!(
            overlapping * 100 > same_user_pairs * 5,
            "expected clustered co-interaction structure ({overlapping}/{same_user_pairs})"
        );
    }
}
