//! Scaled-down counterparts of the paper's three evaluation datasets
//! (Table I), produced by the synthetic generator at a 1/64 linear scale.
//!
//! | Paper dataset | Users  | Items  | Interactions | mean user degree |
//! |---------------|--------|--------|--------------|------------------|
//! | Gowalla       | 50,821 | 57,440 | 1,172,425    | 23.1             |
//! | Retail Rocket | 49,611 | 20,994 | 169,909      | 3.4              |
//! | Amazon        | 56,027 | 29,525 | 256,036      | 4.6              |
//!
//! The presets divide user/item/interaction counts by 64, which preserves
//! the *mean user degree* and the *relative* density ordering
//! (Gowalla ≫ Retail Rocket ≈ Amazon in per-user activity, Retail Rocket the
//! sparsest per edge-budget), the properties the paper's analysis leans on.
//! Absolute density rises at small scale — unavoidable without starving the
//! models of signal — and is documented in EXPERIMENTS.md.

use graphaug_graph::InteractionGraph;

use crate::error::DataError;
use crate::synth::{try_generate, SyntheticConfig};

/// Identifier for one of the three paper-shaped datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Check-in data: dense, many repeat visitors (highest user degree).
    Gowalla,
    /// E-commerce events: extremely sparse.
    RetailRocket,
    /// Product ratings: sparse, item-heavy tail.
    Amazon,
}

impl Dataset {
    /// All three presets in paper order.
    pub const ALL: [Dataset; 3] = [Dataset::Gowalla, Dataset::RetailRocket, Dataset::Amazon];

    /// Paper-facing display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Gowalla => "Gowalla",
            Dataset::RetailRocket => "Retail Rocket",
            Dataset::Amazon => "Amazon",
        }
    }

    /// The generator configuration for this preset.
    pub fn config(self) -> SyntheticConfig {
        match self {
            // 794 × 898, ~18.3k interactions, deg ≈ 23 — check-in style:
            // moderate popularity skew, strong activity skew.
            Dataset::Gowalla => SyntheticConfig::new(794, 898, 18_300)
                .clusters(16)
                .noise(0.08)
                .activity(1.5)
                .seed(0x90_77a11a),
            // 775 × 328, ~2.7k interactions, deg ≈ 3.4 — very sparse events.
            Dataset::RetailRocket => SyntheticConfig::new(775, 328, 2_655)
                .clusters(10)
                .noise(0.12)
                .activity(1.9)
                .seed(0x4e7a11),
            // 875 × 461, ~4k interactions, deg ≈ 4.6 — sparse ratings.
            Dataset::Amazon => SyntheticConfig::new(875, 461, 4_000)
                .clusters(12)
                .noise(0.10)
                .activity(1.7)
                .seed(0xa3a204),
        }
    }

    /// Generates the preset graph, surfacing generator or invariant
    /// failures as typed errors instead of aborting the process.
    pub fn try_load(self) -> Result<InteractionGraph, DataError> {
        let graph = try_generate(&self.config())?;
        graph.validate()?;
        Ok(graph)
    }

    /// Generates the preset graph.
    ///
    /// # Panics
    /// If generation or the structural invariant check fails — impossible
    /// for the built-in configs; use [`Dataset::try_load`] to handle it.
    pub fn load(self) -> InteractionGraph {
        self.try_load()
            .unwrap_or_else(|e| panic!("preset {} failed to load: {e}", self.name()))
    }

    /// A miniature variant for fast tests (≈1/10 of the preset scale).
    pub fn load_mini(self) -> InteractionGraph {
        let cfg = self.config();
        let mini = SyntheticConfig {
            n_users: (cfg.n_users / 8).max(40),
            n_items: (cfg.n_items / 8).max(40),
            target_interactions: (cfg.target_interactions / 8).max(300),
            ..cfg
        };
        let graph = try_generate(&mini)
            .unwrap_or_else(|e| panic!("mini preset {} failed to load: {e}", self.name()));
        graph
            .validate()
            .unwrap_or_else(|e| panic!("mini preset {} invalid: {e}", self.name()));
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_scales_follow_table_one_ratios() {
        let gow = Dataset::Gowalla.load();
        let rr = Dataset::RetailRocket.load();
        let amz = Dataset::Amazon.load();
        let deg = |g: &InteractionGraph| g.n_interactions() as f64 / g.n_users() as f64;
        // Gowalla has by far the highest mean user degree.
        assert!(deg(&gow) > 3.0 * deg(&rr));
        assert!(deg(&gow) > 3.0 * deg(&amz));
        // Retail Rocket and Amazon are item-poorer than user-rich.
        assert!(rr.n_items() < rr.n_users());
        assert!(amz.n_items() < amz.n_users());
    }

    #[test]
    fn try_load_yields_validated_graphs() {
        for ds in Dataset::ALL {
            ds.try_load().unwrap().validate().unwrap();
        }
    }

    #[test]
    fn presets_are_deterministic() {
        let a = Dataset::Amazon.load();
        let b = Dataset::Amazon.load();
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn mini_presets_are_small_but_nonempty() {
        for ds in Dataset::ALL {
            let g = ds.load_mini();
            assert!(g.n_users() <= 150);
            assert!(g.n_interactions() >= 250, "{} too sparse", ds.name());
        }
    }
}
