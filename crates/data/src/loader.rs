//! Loading interaction data from whitespace-separated edge-list text.

use std::collections::HashMap;
use std::fs;
use std::path::Path;

use graphaug_graph::InteractionGraph;

/// Errors raised while parsing an edge-list file.
#[derive(Debug, PartialEq, Eq)]
pub enum LoadError {
    /// The file could not be read.
    Io(String),
    /// A line did not contain two tokens.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::BadLine { line, content } => {
                write!(f, "line {line}: expected `user item`, got {content:?}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// Parses `user item` pairs (whitespace separated, `#`-comment and blank
/// lines skipped) from a string. Raw ids are arbitrary tokens; they are
/// densely re-mapped in first-seen order.
pub fn parse_edge_list(text: &str) -> Result<InteractionGraph, LoadError> {
    let mut user_ids: HashMap<&str, u32> = HashMap::new();
    let mut item_ids: HashMap<&str, u32> = HashMap::new();
    let mut edges = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(u), Some(v)) = (it.next(), it.next()) else {
            return Err(LoadError::BadLine {
                line: i + 1,
                content: line.to_string(),
            });
        };
        let nu = user_ids.len() as u32;
        let uid = *user_ids.entry(u).or_insert(nu);
        let nv = item_ids.len() as u32;
        let vid = *item_ids.entry(v).or_insert(nv);
        edges.push((uid, vid));
    }
    Ok(InteractionGraph::new(user_ids.len(), item_ids.len(), edges))
}

/// Loads an edge-list file from disk.
pub fn load_edge_list(path: &Path) -> Result<InteractionGraph, LoadError> {
    let text = fs::read_to_string(path).map_err(|e| LoadError::Io(e.to_string()))?;
    parse_edge_list(&text)
}

/// Writes a graph back out as a `user item` edge list (round-trip format).
pub fn to_edge_list(g: &InteractionGraph) -> String {
    let mut out = String::with_capacity(g.n_interactions() * 8);
    for &(u, v) in g.edges() {
        out.push_str(&format!("{u} {v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_remaps_ids() {
        let g = parse_edge_list("alice i9\nbob i3\nalice i3\n").unwrap();
        assert_eq!(g.n_users(), 2);
        assert_eq!(g.n_items(), 2);
        assert_eq!(g.n_interactions(), 3);
        assert!(g.has_edge(0, 0)); // alice → i9
        assert!(g.has_edge(0, 1)); // alice → i3
    }

    #[test]
    fn skips_comments_and_blanks() {
        let g = parse_edge_list("# header\n\nu0 v0\n  \nu1 v1\n").unwrap();
        assert_eq!(g.n_interactions(), 2);
    }

    #[test]
    fn reports_bad_lines() {
        let err = parse_edge_list("u0 v0\njusttoken\n").unwrap_err();
        assert_eq!(
            err,
            LoadError::BadLine {
                line: 2,
                content: "justtoken".into()
            }
        );
    }

    #[test]
    fn extra_columns_are_tolerated() {
        // Timestamped logs: third column ignored.
        let g = parse_edge_list("u0 v0 163412\nu1 v2 163413\n").unwrap();
        assert_eq!(g.n_interactions(), 2);
    }

    #[test]
    fn round_trips_through_text() {
        let g = parse_edge_list("a x\nb y\nb z\n").unwrap();
        let text = to_edge_list(&g);
        let g2 = parse_edge_list(&text).unwrap();
        assert_eq!(g.n_interactions(), g2.n_interactions());
        assert_eq!(g.n_users(), g2.n_users());
    }
}
