//! Loading interaction data from whitespace-separated edge-list text.
//!
//! Two parsing modes are offered:
//!
//! * [`parse_edge_list`] — lenient: raw ids are arbitrary tokens densely
//!   re-mapped in first-seen order, duplicate interactions are silently
//!   deduplicated (the historical behavior, right for ad-hoc logs);
//! * [`parse_numeric_edge_list`] — strict: ids must be integers below the
//!   declared bounds, duplicates and empty inputs are typed errors — the
//!   mode a production ingestion path wants, where a malformed dataset
//!   should fail loudly *before* a training run burns hours on it.

use std::collections::HashMap;
use std::fs;
use std::path::Path;

use graphaug_graph::InteractionGraph;

use crate::error::DataError;

/// Backwards-compatible alias for the crate-wide error type this module
/// used to own.
pub type LoadError = DataError;

/// Parses `user item` pairs (whitespace separated, `#`-comment and blank
/// lines skipped) from a string. Raw ids are arbitrary tokens; they are
/// densely re-mapped in first-seen order. Duplicate interactions are
/// deduplicated by [`InteractionGraph::new`].
pub fn parse_edge_list(text: &str) -> Result<InteractionGraph, DataError> {
    let mut user_ids: HashMap<&str, u32> = HashMap::new();
    let mut item_ids: HashMap<&str, u32> = HashMap::new();
    let mut edges = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(u), Some(v)) = (it.next(), it.next()) else {
            return Err(DataError::RaggedRow {
                line: i + 1,
                content: line.to_string(),
            });
        };
        let nu = user_ids.len() as u32;
        let uid = *user_ids.entry(u).or_insert(nu);
        let nv = item_ids.len() as u32;
        let vid = *item_ids.entry(v).or_insert(nv);
        edges.push((uid, vid));
    }
    Ok(InteractionGraph::new(user_ids.len(), item_ids.len(), edges))
}

/// Strictly parses numeric `user item` pairs against declared bounds:
/// every id must be an integer in `0..n_users` / `0..n_items`, repeated
/// interactions are rejected as [`DataError::DuplicateEdge`], and an input
/// with no interactions is [`DataError::Empty`]. Comment (`#`) and blank
/// lines are still skipped.
pub fn parse_numeric_edge_list(
    text: &str,
    n_users: usize,
    n_items: usize,
) -> Result<InteractionGraph, DataError> {
    if n_users == 0 || n_items == 0 {
        return Err(DataError::Empty);
    }
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(u_tok), Some(v_tok)) = (it.next(), it.next()) else {
            return Err(DataError::RaggedRow {
                line: i + 1,
                content: line.to_string(),
            });
        };
        let u = parse_bounded(u_tok, n_users as u64, i + 1)?;
        let v = parse_bounded(v_tok, n_items as u64, i + 1)?;
        if !seen.insert((u, v)) {
            return Err(DataError::DuplicateEdge {
                line: i + 1,
                user: u_tok.to_string(),
                item: v_tok.to_string(),
            });
        }
        edges.push((u, v));
    }
    if edges.is_empty() {
        return Err(DataError::Empty);
    }
    let graph = InteractionGraph::new(n_users, n_items, edges);
    graph.validate()?;
    Ok(graph)
}

fn parse_bounded(token: &str, bound: u64, line: usize) -> Result<u32, DataError> {
    let out_of_range = || DataError::OutOfRangeId {
        line,
        token: token.to_string(),
        bound,
    };
    let id: u64 = token.parse().map_err(|_| out_of_range())?;
    if id >= bound {
        return Err(out_of_range());
    }
    Ok(id as u32)
}

/// Loads an edge-list file from disk (lenient token mode).
pub fn load_edge_list(path: &Path) -> Result<InteractionGraph, DataError> {
    let text = fs::read_to_string(path).map_err(|e| DataError::Io(e.to_string()))?;
    parse_edge_list(&text)
}

/// Writes a graph back out as a `user item` edge list (round-trip format).
pub fn to_edge_list(g: &InteractionGraph) -> String {
    let mut out = String::with_capacity(g.n_interactions() * 8);
    for &(u, v) in g.edges() {
        out.push_str(&format!("{u} {v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_remaps_ids() {
        let g = parse_edge_list("alice i9\nbob i3\nalice i3\n").unwrap();
        assert_eq!(g.n_users(), 2);
        assert_eq!(g.n_items(), 2);
        assert_eq!(g.n_interactions(), 3);
        assert!(g.has_edge(0, 0)); // alice → i9
        assert!(g.has_edge(0, 1)); // alice → i3
    }

    #[test]
    fn skips_comments_and_blanks() {
        let g = parse_edge_list("# header\n\nu0 v0\n  \nu1 v1\n").unwrap();
        assert_eq!(g.n_interactions(), 2);
    }

    #[test]
    fn reports_bad_lines() {
        let err = parse_edge_list("u0 v0\njusttoken\n").unwrap_err();
        assert_eq!(
            err,
            DataError::RaggedRow {
                line: 2,
                content: "justtoken".into()
            }
        );
    }

    #[test]
    fn extra_columns_are_tolerated() {
        // Timestamped logs: third column ignored.
        let g = parse_edge_list("u0 v0 163412\nu1 v2 163413\n").unwrap();
        assert_eq!(g.n_interactions(), 2);
    }

    #[test]
    fn round_trips_through_text() {
        let g = parse_edge_list("a x\nb y\nb z\n").unwrap();
        let text = to_edge_list(&g);
        let g2 = parse_edge_list(&text).unwrap();
        assert_eq!(g.n_interactions(), g2.n_interactions());
        assert_eq!(g.n_users(), g2.n_users());
    }

    #[test]
    fn strict_mode_accepts_valid_numeric_input() {
        let g = parse_numeric_edge_list("0 0\n0 1\n1 2\n", 2, 3).unwrap();
        assert_eq!(g.n_users(), 2);
        assert_eq!(g.n_items(), 3);
        assert_eq!(g.n_interactions(), 3);
        g.validate().unwrap();
    }

    #[test]
    fn strict_mode_rejects_duplicates_with_the_line_number() {
        let err = parse_numeric_edge_list("0 0\n1 1\n0 0\n", 2, 2).unwrap_err();
        assert_eq!(
            err,
            DataError::DuplicateEdge {
                line: 3,
                user: "0".into(),
                item: "0".into()
            }
        );
    }

    #[test]
    fn strict_mode_rejects_out_of_range_and_non_numeric_ids() {
        let err = parse_numeric_edge_list("0 5\n", 2, 3).unwrap_err();
        assert_eq!(
            err,
            DataError::OutOfRangeId {
                line: 1,
                token: "5".into(),
                bound: 3
            }
        );
        let err = parse_numeric_edge_list("0 0\nalice 1\n", 2, 3).unwrap_err();
        assert!(matches!(err, DataError::OutOfRangeId { line: 2, .. }));
    }

    #[test]
    fn strict_mode_rejects_empty_inputs() {
        assert_eq!(
            parse_numeric_edge_list("# only comments\n", 2, 3).unwrap_err(),
            DataError::Empty
        );
        assert_eq!(
            parse_numeric_edge_list("0 0\n", 0, 0).unwrap_err(),
            DataError::Empty
        );
    }

    #[test]
    fn missing_file_is_a_typed_error_not_a_panic() {
        let err = load_edge_list(Path::new("/nonexistent/graphaug.txt")).unwrap_err();
        assert!(matches!(err, DataError::Io(_)));
    }
}
