//! Dataset generation and loading for the GraphAug reproduction.
//!
//! The paper's datasets (Gowalla, Retail Rocket, Amazon — Table I) are not
//! redistributable, so this crate provides:
//!
//! * [`synth`] — a seeded synthetic generator with cluster-structured
//!   preferences, Zipf item popularity, Pareto user activity, and injectable
//!   behavioural noise (the properties that drive relative model ordering);
//! * [`presets`] — three 1/64-scale dataset presets matching Table I's shape
//!   statistics, see [`Dataset`];
//! * [`loader`] — plain-text edge-list parsing for users who want to run the
//!   models on the real datasets;
//! * [`stats`] — the Table I statistics calculator;
//! * [`error`] — the typed [`DataError`] every fallible entry point returns,
//!   so malformed datasets are rejected gracefully at startup instead of
//!   panicking mid-pipeline.

pub mod error;
pub mod loader;
pub mod presets;
pub mod stats;
pub mod synth;

pub use error::DataError;
pub use loader::{
    load_edge_list, parse_edge_list, parse_numeric_edge_list, to_edge_list, LoadError,
};
pub use presets::Dataset;
pub use stats::{gini, DatasetStats};
pub use synth::{generate, try_generate, SyntheticConfig};
