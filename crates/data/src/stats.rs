//! Dataset statistics (paper Table I).

use graphaug_graph::InteractionGraph;

/// Summary statistics of an interaction dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    /// Display name.
    pub name: String,
    /// User count.
    pub users: usize,
    /// Item count.
    pub items: usize,
    /// Interaction count.
    pub interactions: usize,
    /// `|E| / (I·J)`.
    pub density: f64,
    /// Mean interactions per user.
    pub mean_user_degree: f64,
    /// Gini coefficient of the item-degree distribution (popularity skew).
    pub item_gini: f64,
}

impl DatasetStats {
    /// Computes statistics for a graph.
    pub fn of(name: &str, g: &InteractionGraph) -> Self {
        DatasetStats {
            name: name.to_string(),
            users: g.n_users(),
            items: g.n_items(),
            interactions: g.n_interactions(),
            density: g.density(),
            mean_user_degree: g.n_interactions() as f64 / g.n_users() as f64,
            item_gini: gini(&g.item_degrees()),
        }
    }

    /// One markdown table row (matches the Table I layout plus shape stats).
    pub fn markdown_row(&self) -> String {
        format!(
            "| {} | {} | {} | {} | {:.1e} | {:.1} | {:.2} |",
            self.name,
            self.users,
            self.items,
            self.interactions,
            self.density,
            self.mean_user_degree,
            self.item_gini
        )
    }

    /// The markdown table header matching [`DatasetStats::markdown_row`].
    pub fn markdown_header() -> String {
        "| Dataset | User # | Item # | Interaction # | Density | Mean deg | Item Gini |\n\
         |---|---|---|---|---|---|---|"
            .to_string()
    }
}

/// Gini coefficient of a non-negative count distribution (0 = uniform,
/// → 1 = fully concentrated).
pub fn gini(counts: &[usize]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("counts are finite"));
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_uniform_is_zero() {
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-9);
    }

    #[test]
    fn gini_concentrated_is_high() {
        let g = gini(&[0, 0, 0, 100]);
        assert!(g > 0.7, "gini {g}");
    }

    #[test]
    fn gini_handles_degenerate_inputs() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
    }

    #[test]
    fn stats_match_graph() {
        let g = InteractionGraph::new(2, 5, vec![(0, 0), (0, 1), (1, 2)]);
        let s = DatasetStats::of("toy", &g);
        assert_eq!(s.users, 2);
        assert_eq!(s.interactions, 3);
        assert!((s.density - 0.3).abs() < 1e-9);
        assert!((s.mean_user_degree - 1.5).abs() < 1e-9);
    }

    #[test]
    fn markdown_row_is_well_formed() {
        let g = InteractionGraph::new(2, 5, vec![(0, 0)]);
        let row = DatasetStats::of("toy", &g).markdown_row();
        assert_eq!(row.matches('|').count(), 8);
        assert!(row.contains("toy"));
    }
}
