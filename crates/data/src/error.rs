//! Typed errors for dataset loading, parsing, and generation.
//!
//! Every fallible entry point of this crate returns [`DataError`] instead
//! of panicking, so the fault-tolerant training runtime (and any serving
//! stack above it) can reject a malformed dataset gracefully at startup
//! rather than aborting the process. `*_or_panic` shims keep the examples
//! one-liners.

use graphaug_graph::GraphInvariantError;

/// Why a dataset could not be loaded, parsed, or generated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DataError {
    /// The file could not be read.
    Io(String),
    /// A line did not contain the two `user item` tokens.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The same `(user, item)` interaction appeared twice (strict parsing).
    DuplicateEdge {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The raw user token.
        user: String,
        /// The raw item token.
        item: String,
    },
    /// A numeric id fell outside the declared bounds (strict parsing).
    OutOfRangeId {
        /// 1-based line number.
        line: usize,
        /// The raw offending token.
        token: String,
        /// The exclusive upper bound the id must stay below.
        bound: u64,
    },
    /// The input produced no users, no items, or no interactions.
    Empty,
    /// A generator configuration was unusable (zero users/items, bad noise
    /// fraction, no clusters).
    BadConfig(String),
    /// A constructed graph failed its structural invariant check.
    Invalid(GraphInvariantError),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "io error: {e}"),
            DataError::RaggedRow { line, content } => {
                write!(f, "line {line}: expected `user item`, got {content:?}")
            }
            DataError::DuplicateEdge { line, user, item } => {
                write!(f, "line {line}: duplicate interaction ({user}, {item})")
            }
            DataError::OutOfRangeId { line, token, bound } => {
                write!(f, "line {line}: id {token:?} not in 0..{bound}")
            }
            DataError::Empty => write!(f, "dataset has no users, items, or interactions"),
            DataError::BadConfig(msg) => write!(f, "bad generator config: {msg}"),
            DataError::Invalid(e) => write!(f, "graph invariant violated: {e}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<GraphInvariantError> for DataError {
    fn from(e: GraphInvariantError) -> Self {
        DataError::Invalid(e)
    }
}
