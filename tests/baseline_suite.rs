//! Integration tests over the full baseline registry: every Table II model
//! must construct, train, score, and reproduce deterministically.

use graphaug_baselines::{build_model, model_names, BaselineOpts};
use graphaug_bench::split_graph;
use graphaug_data::{generate, SyntheticConfig};
use graphaug_eval::evaluate;
use graphaug_graph::TrainTestSplit;

fn small_split() -> TrainTestSplit {
    let g = generate(&SyntheticConfig::new(60, 80, 700).clusters(4).seed(8));
    split_graph(&g)
}

#[test]
fn every_baseline_trains_and_produces_finite_metrics() {
    let split = small_split();
    for name in model_names() {
        let mut m = build_model(name, BaselineOpts::fast_test().epochs(3), &split.train);
        m.fit();
        let res = evaluate(m.as_ref(), &split, &[10, 20]);
        assert!(res.n_users > 0, "{name}: no users evaluated");
        assert!(
            res.recall(10).is_finite() && res.recall(10) >= 0.0,
            "{name}: bad recall"
        );
        assert!(
            res.recall(20) >= res.recall(10),
            "{name}: recall must be monotone in k"
        );
        let scores = m.score_items(0);
        assert_eq!(
            scores.len(),
            split.train.n_items(),
            "{name}: wrong score width"
        );
        assert!(
            scores.iter().all(|s| s.is_finite()),
            "{name}: non-finite scores"
        );
    }
}

#[test]
fn baselines_are_deterministic_per_seed() {
    let split = small_split();
    for name in ["LightGCN", "SGL", "NCL", "BiasMF"] {
        let run = |seed: u64| {
            let mut m = build_model(
                name,
                BaselineOpts::fast_test().epochs(3).seed(seed),
                &split.train,
            );
            m.fit();
            evaluate(m.as_ref(), &split, &[20]).recall(20)
        };
        assert_eq!(run(5), run(5), "{name}: same seed must reproduce");
    }
}

#[test]
fn gnn_models_outperform_nonpersonalized_scoring() {
    // After training, LightGCN should beat a constant scorer (recall of a
    // constant ranking == recall of top-degree items only; here we compare
    // against the untrained version of the same model as a weak floor).
    let split = small_split();
    let untrained = build_model(
        "LightGCN",
        BaselineOpts::fast_test().epochs(3),
        &split.train,
    );
    let before = evaluate(untrained.as_ref(), &split, &[20]).recall(20);
    let mut m = build_model(
        "LightGCN",
        BaselineOpts::fast_test().epochs(25),
        &split.train,
    );
    m.fit();
    let after = evaluate(m.as_ref(), &split, &[20]).recall(20);
    assert!(after > before, "LightGCN: {before} -> {after}");
}

#[test]
fn ssl_models_handle_graphs_with_isolated_users() {
    // A pathological graph where several users have exactly one edge and
    // some items are cold. SSL batch machinery must not panic.
    let mut edges = vec![(0u32, 0u32)];
    for u in 1..30u32 {
        edges.push((u, u % 10));
        if u % 3 == 0 {
            edges.push((u, (u + 5) % 10));
        }
    }
    let g = graphaug_graph::InteractionGraph::new(30, 20, edges);
    let split = split_graph(&g);
    for name in ["SGL", "HCCF", "NCL", "CGI", "SLRec", "MHCN"] {
        let mut m = build_model(name, BaselineOpts::fast_test().epochs(2), &split.train);
        m.fit();
        let res = evaluate(m.as_ref(), &split, &[10]);
        assert!(res.recall(10).is_finite(), "{name} on sparse graph");
    }
}
