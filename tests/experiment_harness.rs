//! Integration tests of the experiment-harness plumbing that the
//! table/figure binaries rely on.

use graphaug_bench::{
    build_any, prepared_split, run_model, run_model_with_curve, selected_datasets, split_graph,
    write_csv, KS, SPLIT_SEED, TEST_FRACTION,
};
use graphaug_data::{generate, Dataset, SyntheticConfig};
use graphaug_eval::{evaluate_users, TextTable};
use graphaug_graph::{inject_fake_edges, paper_degree_groups};

#[test]
fn prepared_splits_are_deterministic_and_disjoint() {
    // Mini variant keeps this fast regardless of GRAPHAUG_FAST.
    let g = Dataset::RetailRocket.load_mini();
    let a = split_graph(&g);
    let b = split_graph(&g);
    assert_eq!(a.test.edges(), b.test.edges());
    for &(u, v) in a.test.edges() {
        assert!(!a.train.has_edge(u, v));
    }
    assert!((TEST_FRACTION - 0.2).abs() < 1e-12);
    assert_eq!(SPLIT_SEED, 2024);
}

#[test]
fn run_model_produces_complete_outcome() {
    let g = generate(&SyntheticConfig::new(50, 60, 500).seed(4));
    let split = split_graph(&g);
    let out = run_model("LightGCN", &split);
    assert!(out.train_time.as_nanos() > 0);
    for &k in &KS {
        assert!(out.result.recall(k) >= 0.0);
    }
    assert_eq!(out.model.name(), "LightGCN");
}

#[test]
fn convergence_curves_have_one_point_per_epoch() {
    let g = generate(&SyntheticConfig::new(50, 60, 500).seed(4));
    let split = split_graph(&g);
    std::env::set_var("GRAPHAUG_EPOCHS", "4");
    let out = run_model_with_curve("LightGCN", &split);
    std::env::remove_var("GRAPHAUG_EPOCHS");
    assert_eq!(out.curve.points().len(), 4);
    // Epochs are recorded in order.
    let epochs: Vec<usize> = out.curve.points().iter().map(|&(e, _)| e).collect();
    assert_eq!(epochs, vec![0, 1, 2, 3]);
}

#[test]
fn degree_groups_cover_the_table5_population() {
    let split = prepared_split(Dataset::Gowalla);
    let groups = paper_degree_groups(&split.train);
    assert_eq!(groups.len(), 5);
    let covered: usize = groups.iter().map(|g| g.users.len()).sum();
    assert!(
        covered > 0,
        "at least some users fall into the paper buckets"
    );
    // Per-group evaluation runs on the harness path used by table5_skewed.
    let out = run_model("BiasMF", &split);
    for grp in &groups {
        if grp.users.is_empty() {
            continue;
        }
        let r = evaluate_users(out.model.as_ref(), &split, &grp.users, &[40]);
        assert!(r.recall(40).is_finite());
    }
}

#[test]
fn noise_injection_series_is_monotone_in_edges() {
    let g = generate(&SyntheticConfig::new(80, 60, 900).seed(6));
    let mut last = g.n_interactions();
    for ratio in [0.05f64, 0.10, 0.15, 0.20, 0.25] {
        let noisy = inject_fake_edges(&g, ratio, 1);
        assert!(noisy.n_interactions() > last);
        last = noisy.n_interactions();
    }
}

#[test]
fn csv_emission_round_trips() {
    let mut t = TextTable::new(&["Model", "Recall@20"]);
    t.row(&["GraphAug".into(), "0.2025".into()]);
    let p = write_csv("harness_integration_selftest", &t);
    let text = std::fs::read_to_string(&p).expect("read back");
    assert!(text.contains("GraphAug"));
    std::fs::remove_file(p).ok();
}

#[test]
fn dataset_selection_defaults_to_all_three() {
    if std::env::var("GRAPHAUG_DATASETS").is_err() {
        let ds = selected_datasets();
        assert_eq!(ds.len(), 3);
    }
}

#[test]
fn build_any_rejects_unknown_names() {
    let g = generate(&SyntheticConfig::new(20, 20, 80).seed(1));
    let result = std::panic::catch_unwind(|| build_any("DefinitelyNotAModel", &g));
    assert!(result.is_err());
}

#[test]
fn export_import_serves_identical_rankings() {
    use graphaug_eval::{export_embeddings, import_embeddings, topk_indices, Recommender};
    let g = generate(&SyntheticConfig::new(40, 50, 400).seed(2));
    let split = split_graph(&g);
    let out = run_model("LightGCN", &split);
    let dump = export_embeddings(out.model.as_ref());
    let snap = import_embeddings(&dump).expect("round trip");
    for user in [0usize, 7, 33] {
        let a = topk_indices(&out.model.score_items(user), 10);
        let b = topk_indices(&snap.score_items(user), 10);
        assert_eq!(a, b, "user {user} rankings must survive export/import");
    }
}
