//! End-to-end integration tests: the full data → split → train → evaluate
//! pipeline across crates, exercising GraphAug and its ablations exactly the
//! way the experiment binaries do.

use graphaug_bench::{build_any, split_graph, KS};
use graphaug_core::{EncoderKind, GraphAug, GraphAugConfig};
use graphaug_data::{generate, SyntheticConfig};
use graphaug_eval::{evaluate, mad, Recommender};
use graphaug_graph::{inject_fake_edges, TrainTestSplit};

fn medium_split() -> TrainTestSplit {
    let g = generate(&SyntheticConfig::new(120, 100, 1_800).clusters(6).seed(42));
    split_graph(&g)
}

#[test]
fn graphaug_end_to_end_beats_random_ranking() {
    let split = medium_split();
    let mut m = GraphAug::new(GraphAugConfig::fast_test().epochs(15), &split.train);
    m.fit();
    let res = evaluate(&m, &split, &KS);
    // A uniform-random ranker achieves Recall@20 ≈ 20 / ~85 unseen items ≈
    // 0.24 here; trained GraphAug must do meaningfully better.
    assert!(res.recall(20) > 0.35, "recall@20 {}", res.recall(20));
    assert!(res.ndcg(20) > 0.1, "ndcg@20 {}", res.ndcg(20));
    assert!(
        res.recall(40) >= res.recall(20),
        "recall must be monotone in k"
    );
}

#[test]
fn full_model_beats_each_ablation_or_ties_closely() {
    // The ablations still train; the claim tested here is not strict
    // dominance on a tiny dataset but that the full model is competitive
    // and every variant produces sane metrics (Fig. 2's setup).
    let split = medium_split();
    let mut results = Vec::new();
    for (name, cfg) in [
        ("full", GraphAugConfig::fast_test().epochs(12)),
        (
            "w/o mixhop",
            GraphAugConfig::fast_test()
                .epochs(12)
                .encoder(EncoderKind::Vanilla),
        ),
        ("w/o gib", GraphAugConfig::fast_test().epochs(12).gib(false)),
        ("w/o cl", GraphAugConfig::fast_test().epochs(12).cl(false)),
    ] {
        let mut m = GraphAug::new(cfg, &split.train);
        m.fit();
        let r = evaluate(&m, &split, &[20]).recall(20);
        assert!(r.is_finite() && r > 0.0, "{name} produced recall {r}");
        results.push((name, r));
    }
    let full = results[0].1;
    for &(name, r) in &results[1..] {
        assert!(
            full > r * 0.75,
            "full model ({full:.4}) collapsed against {name} ({r:.4})"
        );
    }
}

#[test]
fn graphaug_trained_on_noise_still_ranks_clean_holdout() {
    // Fig. 3's protocol: corrupt train topology, evaluate on clean holdout.
    let clean = medium_split();
    let noisy = TrainTestSplit {
        train: inject_fake_edges(&clean.train, 0.25, 3),
        test: clean.test.clone(),
    };
    let mut m = GraphAug::new(GraphAugConfig::fast_test().epochs(15), &noisy.train);
    m.fit();
    let res = evaluate(&m, &noisy, &[20]);
    assert!(
        res.recall(20) > 0.25,
        "noisy-train recall {}",
        res.recall(20)
    );
}

#[test]
fn mixhop_keeps_mad_higher_than_vanilla() {
    // Table III's oversmoothing claim, end to end.
    let split = medium_split();
    let mut full = GraphAug::new(GraphAugConfig::fast_test().epochs(12), &split.train);
    full.fit();
    let mut vanilla = GraphAug::new(
        GraphAugConfig::fast_test()
            .epochs(12)
            .encoder(EncoderKind::Vanilla),
        &split.train,
    );
    vanilla.fit();
    let mad_full = mad(&full.all_node_embeddings().expect("embeddings"));
    let mad_vanilla = mad(&vanilla.all_node_embeddings().expect("embeddings"));
    assert!(
        mad_full > mad_vanilla * 0.8,
        "mixhop MAD {mad_full:.4} should not collapse below vanilla {mad_vanilla:.4}"
    );
}

#[test]
fn harness_builds_and_runs_graphaug_by_name() {
    // Keep the harness default (40 epochs) from dominating test time.
    std::env::set_var("GRAPHAUG_EPOCHS", "4");
    let split = medium_split();
    let mut m = build_any("GraphAug w/o CL", &split.train);
    m.fit();
    assert_eq!(m.name(), "GraphAug w/o CL");
    let res = evaluate(m.as_ref(), &split, &[20]);
    assert!(res.n_users > 0);
}

#[test]
fn training_is_deterministic_for_a_fixed_seed() {
    let split = medium_split();
    let run = || {
        let mut m = GraphAug::new(GraphAugConfig::fast_test().epochs(5).seed(99), &split.train);
        m.fit();
        evaluate(&m, &split, &[20]).recall(20)
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "same seed must reproduce identical results");
}
