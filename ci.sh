#!/usr/bin/env bash
# Offline tier-1 CI gate for the GraphAug workspace.
#
# The workspace is hermetic: every dependency is a local path crate, so the
# whole gate runs with the network hard-disabled. Any accidental
# reintroduction of a registry dependency fails loudly at resolution time
# instead of silently fetching.
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

# Hard-disable the network for every cargo invocation below.
export CARGO_NET_OFFLINE=true

stage() { printf '\n==> %s\n' "$*"; }

stage "cargo fmt --check"
cargo fmt --all -- --check

stage "cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

stage "cargo build --release --offline"
cargo build --release --offline

stage "cargo test -q --offline (GRAPHAUG_THREADS=1)"
GRAPHAUG_THREADS=1 cargo test -q --offline

stage "cargo test -q --offline (GRAPHAUG_THREADS=3)"
# The parallel runtime must be bit-deterministic in the thread count; run
# the whole suite again with multi-worker pools (an odd and an even count —
# uneven tail chunks land on different workers) to prove it.
GRAPHAUG_THREADS=3 cargo test -q --offline

stage "cargo test -q --offline (GRAPHAUG_THREADS=4)"
GRAPHAUG_THREADS=4 cargo test -q --offline

stage "cargo test -q --offline (GRAPHAUG_SIMD=0)"
# The scalar fallback build must be bit-identical to the AVX2 lane build;
# run the suite once more with the lanes force-disabled.
GRAPHAUG_SIMD=0 cargo test -q --offline

stage "bench smoke (tiny budget)"
# Not a perf measurement — just proves the bench harness, the workloads,
# and the regression differ run end to end. Full recordings use
# bench_baseline + bench_compare with default budgets.
GRAPHAUG_BENCH_ITERS=3 GRAPHAUG_BENCH_WARMUP_MS=10 GRAPHAUG_BENCH_MAX_MS=200 \
    GRAPHAUG_BENCH_OUT=/tmp/graphaug_bench_smoke.json \
    cargo run --release --offline -q -p graphaug-bench --bin bench_baseline smoke
cargo run --release --offline -q -p graphaug-bench --bin bench_compare -- \
    /tmp/graphaug_bench_smoke.json /tmp/graphaug_bench_smoke.json

stage "kill/resume smoke test (GRAPHAUG_THREADS=1 and 4)"
# Crash-safety end to end, across real process boundaries: train with
# checkpoint-every-epoch, SIGKILL the victim mid-run, resume from the
# surviving checkpoint, and require the FINAL line (bit-exact embedding
# fingerprint + Recall@20/NDCG@20 bit patterns) to equal an uninterrupted
# reference run. Determinism makes this an equality check, not a tolerance.
# The binary is invoked directly (not through `cargo run`) so the kill hits
# the trainer itself rather than orphaning it behind a cargo wrapper.
KILL_RESUME=target/release/kill_resume
for threads in 1 4; do
    ckdir="$(mktemp -d /tmp/graphaug_kill_resume.XXXXXX)"
    reference=$(GRAPHAUG_THREADS=$threads "$KILL_RESUME" reference "$ckdir/ref")

    victim_log="$ckdir/victim.log"
    GRAPHAUG_THREADS=$threads "$KILL_RESUME" victim "$ckdir/ck" >"$victim_log" &
    victim_pid=$!
    # Wait for training to be mid-run (a few epochs in), then kill -9.
    for _ in $(seq 1 200); do
        grep -q "EPOCH 3" "$victim_log" 2>/dev/null && break
        sleep 0.05
    done
    kill -9 "$victim_pid" 2>/dev/null || true
    wait "$victim_pid" 2>/dev/null || true
    if grep -q "FINAL" "$victim_log"; then
        echo "ERROR: victim finished before the kill landed" >&2
        exit 1
    fi

    resumed=$(GRAPHAUG_THREADS=$threads "$KILL_RESUME" resume "$ckdir/ck")
    if [[ "$reference" != "$resumed" ]]; then
        echo "ERROR: kill/resume mismatch at GRAPHAUG_THREADS=$threads" >&2
        echo "  reference: $reference" >&2
        echo "  resumed:   $resumed" >&2
        exit 1
    fi
    echo "ok: threads=$threads resumed run bit-identical to reference"
    rm -rf "$ckdir"
done

stage "serving smoke test (serve_main + loadgen parity over TCP)"
# Boot the demo service on an ephemeral loopback port (training the demo
# model into a temp checkpoint dir on first run), require its offline-vs-
# served parity self-check to pass, then drive it with the seeded load
# generator — any ERR or malformed response fails the run.
serve_dir="$(mktemp -d /tmp/graphaug_serve_smoke.XXXXXX)"
serve_log="$serve_dir/serve.log"
target/release/serve_main "$serve_dir/ck" >"$serve_log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 600); do
    grep -q "READY addr=" "$serve_log" 2>/dev/null && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then break; fi
    sleep 0.1
done
if ! grep -q "PARITY ok" "$serve_log"; then
    echo "ERROR: serve_main parity self-check did not pass" >&2
    cat "$serve_log" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
serve_addr=$(sed -n 's/^READY addr=\([^ ]*\).*/\1/p' "$serve_log")
if ! target/release/loadgen "$serve_addr" --requests 1000 --conns 4; then
    echo "ERROR: loadgen reported errors against $serve_addr" >&2
    cat "$serve_log" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
grep "PARITY ok" "$serve_log"
echo "ok: served rankings bit-identical to offline eval, loadgen clean"
rm -rf "$serve_dir"

stage "perf trajectory gate (BENCH_pr5 vs BENCH_pr4)"
# The recorded PR 5 trajectory point must hold a ≤10% median regression
# bound against the PR 4 baseline. This diffs the two *recorded* files —
# deterministic and machine-independent — rather than re-benching on
# whatever box CI runs on.
if [[ -f BENCH_pr5.json && -f BENCH_pr4.json ]]; then
    cargo run --release --offline -q -p graphaug-bench --bin bench_compare -- \
        BENCH_pr5.json BENCH_pr4.json --threshold 10
else
    echo "skip: BENCH_pr5.json / BENCH_pr4.json not both present"
fi

stage "dependency hermeticity check"
# No crate manifest may declare a non-path external dependency.
if grep -rEn '^\s*(rand|proptest|criterion)\s*=' crates/*/Cargo.toml; then
    echo "ERROR: external registry dependency found in a crate manifest" >&2
    exit 1
fi
echo "ok: all dependencies are local path crates"

printf '\nCI gate passed.\n'
