#!/usr/bin/env bash
# Offline tier-1 CI gate for the GraphAug workspace.
#
# The workspace is hermetic: every dependency is a local path crate, so the
# whole gate runs with the network hard-disabled. Any accidental
# reintroduction of a registry dependency fails loudly at resolution time
# instead of silently fetching.
#
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

# Hard-disable the network for every cargo invocation below.
export CARGO_NET_OFFLINE=true

stage() { printf '\n==> %s\n' "$*"; }

stage "cargo fmt --check"
cargo fmt --all -- --check

stage "cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

stage "cargo build --release --offline"
cargo build --release --offline

stage "cargo test -q --offline"
cargo test -q --offline

stage "dependency hermeticity check"
# No crate manifest may declare a non-path external dependency.
if grep -rEn '^\s*(rand|proptest|criterion)\s*=' crates/*/Cargo.toml; then
    echo "ERROR: external registry dependency found in a crate manifest" >&2
    exit 1
fi
echo "ok: all dependencies are local path crates"

printf '\nCI gate passed.\n'
