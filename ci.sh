#!/usr/bin/env bash
# Offline tier-1 CI gate for the GraphAug workspace.
#
# The workspace is hermetic: every dependency is a local path crate, so the
# whole gate runs with the network hard-disabled. Any accidental
# reintroduction of a registry dependency fails loudly at resolution time
# instead of silently fetching.
#
# Usage: ./ci.sh [GROUP]
#
# GROUP selects a stage group so the GitHub workflow can run (and time out)
# each one as its own step; the default runs everything in order:
#
#   static   cargo fmt --check, clippy -D warnings
#   build    cargo build --release
#   tests    full test suite at GRAPHAUG_THREADS={1,3,4} and GRAPHAUG_SIMD=0
#   bench    bench harness smoke run (tiny budget)
#   process  process-level smokes: kill/resume, serving parity + loadgen,
#            ANN recall gate + REC/RECX drive, int8 drift gate +
#            quant-parity sweep, shard router + chaos loadgen, supervisor
#            chaos (SIGKILL a replicated primary under load), online
#            ingestion (stream PUTs, fine-tune + hot reload, replay the
#            log from scratch and require hex-identical rankings)
#            (all boot real binaries)
#   gates    recorded perf-trajectory gate, dependency hermeticity
#
# The `tests`/`bench`/`process` groups expect `build` to have run first in
# the same workspace (they use target/release binaries).
set -euo pipefail
cd "$(dirname "$0")"

# Hard-disable the network for every cargo invocation below.
export CARGO_NET_OFFLINE=true

stage() { printf '\n==> %s\n' "$*"; }

# ---------------------------------------------------------------------------
# Shared process-stage helpers: every background binary is registered for
# trap cleanup, so a failing stage can `exit 1` from anywhere without
# leaking processes or temp dirs, and all logs land in one directory the
# workflow uploads as an artifact on failure.
# ---------------------------------------------------------------------------

LOG_DIR="${GRAPHAUG_CI_LOG_DIR:-/tmp/graphaug_ci_logs}"
mkdir -p "$LOG_DIR"

CLEANUP_PIDS=()
CLEANUP_DIRS=()

cleanup() {
    local pid dir
    for pid in "${CLEANUP_PIDS[@]:-}"; do
        [[ -n "$pid" ]] && kill -9 "$pid" 2>/dev/null || true
    done
    for pid in "${CLEANUP_PIDS[@]:-}"; do
        [[ -n "$pid" ]] && wait "$pid" 2>/dev/null || true
    done
    for dir in "${CLEANUP_DIRS[@]:-}"; do
        [[ -n "$dir" ]] && rm -rf "$dir"
    done
}
trap cleanup EXIT

register_pid() { CLEANUP_PIDS+=("$1"); }
register_dir() { CLEANUP_DIRS+=("$1"); }

# tmp_dir TAG: a registered (auto-removed) temp directory.
tmp_dir() {
    local dir
    dir="$(mktemp -d "/tmp/graphaug_${1}.XXXXXX")"
    register_dir "$dir"
    printf '%s' "$dir"
}

# wait_for_line LOG PATTERN [PID]: polls LOG until PATTERN appears; fails
# after ~60s, or as soon as PID (when given) exits without producing it.
wait_for_line() {
    local log="$1" pattern="$2" pid="${3:-}"
    local _i
    for _i in $(seq 1 600); do
        grep -q "$pattern" "$log" 2>/dev/null && return 0
        if [[ -n "$pid" ]] && ! kill -0 "$pid" 2>/dev/null; then
            # Lost the race with a fast process: check once more.
            grep -q "$pattern" "$log" 2>/dev/null && return 0
            return 1
        fi
        sleep 0.1
    done
    return 1
}

# boot_bin NAME READY_PATTERN CMD...: starts CMD in the background logging
# to $LOG_DIR/NAME.log, registers the PID for cleanup, and waits until
# READY_PATTERN appears in the log. Sets BOOT_PID and BOOT_LOG.
boot_bin() {
    local name="$1" pattern="$2"
    shift 2
    BOOT_LOG="$LOG_DIR/$name.log"
    : >"$BOOT_LOG"
    "$@" >"$BOOT_LOG" 2>&1 &
    BOOT_PID=$!
    register_pid "$BOOT_PID"
    if ! wait_for_line "$BOOT_LOG" "$pattern" "$BOOT_PID"; then
        echo "ERROR: $name never logged '$pattern'" >&2
        cat "$BOOT_LOG" >&2
        return 1
    fi
}

# ready_addr LOG: the bound address from a `READY addr=...` line.
ready_addr() { sed -n 's/^READY addr=\([^ ]*\).*/\1/p' "$1" | head -n 1; }

# ready_admin LOG: the loopback admin address from a `READY ... admin=...`
# line (router_main and supervisord announce both listeners).
ready_admin() { sed -n 's/^READY .*admin=\([^ ]*\).*/\1/p' "$1" | head -n 1; }

# spawned_field LOG SHARD REPLICA FIELD: FIELD=value from the matching
# `SPAWNED shard=S replica=R pid=... addr=...` supervisor log line.
spawned_field() {
    sed -n "s/^SPAWNED shard=$2 replica=$3 .*$4=\\([^ ]*\\).*/\\1/p" "$1" | head -n 1
}

# ---------------------------------------------------------------------------
# Stage groups.
# ---------------------------------------------------------------------------

group_static() {
    stage "cargo fmt --check"
    cargo fmt --all -- --check

    stage "cargo clippy -- -D warnings"
    cargo clippy --workspace --all-targets --offline -- -D warnings
}

group_build() {
    stage "cargo build --release --offline"
    cargo build --release --offline
}

group_tests() {
    stage "cargo test -q --offline (GRAPHAUG_THREADS=1)"
    GRAPHAUG_THREADS=1 cargo test -q --offline

    stage "cargo test -q --offline (GRAPHAUG_THREADS=3)"
    # The parallel runtime must be bit-deterministic in the thread count;
    # run the whole suite again with multi-worker pools (an odd and an even
    # count — uneven tail chunks land on different workers) to prove it.
    GRAPHAUG_THREADS=3 cargo test -q --offline

    stage "cargo test -q --offline (GRAPHAUG_THREADS=4)"
    GRAPHAUG_THREADS=4 cargo test -q --offline

    stage "cargo test -q --offline (GRAPHAUG_SIMD=0)"
    # The scalar fallback build must be bit-identical to the AVX2 lane
    # build; run the suite once more with the lanes force-disabled.
    GRAPHAUG_SIMD=0 cargo test -q --offline
}

group_bench() {
    stage "bench smoke (tiny budget)"
    # Not a perf measurement — just proves the bench harness, the
    # workloads, and the regression differ run end to end. Full recordings
    # use bench_baseline + bench_compare with default budgets.
    GRAPHAUG_BENCH_ITERS=3 GRAPHAUG_BENCH_WARMUP_MS=10 GRAPHAUG_BENCH_MAX_MS=200 \
        GRAPHAUG_BENCH_OUT=/tmp/graphaug_bench_smoke.json \
        cargo run --release --offline -q -p graphaug-bench --bin bench_baseline smoke
    cargo run --release --offline -q -p graphaug-bench --bin bench_compare -- \
        /tmp/graphaug_bench_smoke.json /tmp/graphaug_bench_smoke.json
}

stage_kill_resume() {
    stage "kill/resume smoke test (GRAPHAUG_THREADS=1 and 4)"
    # Crash-safety end to end, across real process boundaries: train with
    # checkpoint-every-epoch, SIGKILL the victim mid-run, resume from the
    # surviving checkpoint, and require the FINAL line (bit-exact embedding
    # fingerprint + Recall@20/NDCG@20 bit patterns) to equal an
    # uninterrupted reference run. Determinism makes this an equality
    # check, not a tolerance. The binary is invoked directly (not through
    # `cargo run`) so the kill hits the trainer itself rather than
    # orphaning it behind a cargo wrapper.
    local kill_resume=target/release/kill_resume
    local threads ckdir reference resumed
    for threads in 1 4; do
        ckdir="$(tmp_dir kill_resume)"
        reference=$(GRAPHAUG_THREADS=$threads "$kill_resume" reference "$ckdir/ref")

        # Boot the victim and wait for it to be mid-run, then kill -9.
        boot_bin "kill_resume_victim_t$threads" "EPOCH 3" \
            env GRAPHAUG_THREADS=$threads "$kill_resume" victim "$ckdir/ck"
        kill -9 "$BOOT_PID" 2>/dev/null || true
        wait "$BOOT_PID" 2>/dev/null || true
        if grep -q "FINAL" "$BOOT_LOG"; then
            echo "ERROR: victim finished before the kill landed" >&2
            exit 1
        fi

        resumed=$(GRAPHAUG_THREADS=$threads "$kill_resume" resume "$ckdir/ck")
        if [[ "$reference" != "$resumed" ]]; then
            echo "ERROR: kill/resume mismatch at GRAPHAUG_THREADS=$threads" >&2
            echo "  reference: $reference" >&2
            echo "  resumed:   $resumed" >&2
            exit 1
        fi
        echo "ok: threads=$threads resumed run bit-identical to reference"
    done
}

stage_serving() {
    stage "serving smoke test (serve_main + loadgen parity over TCP)"
    # Boot the demo service on an ephemeral loopback port (training the
    # demo model into a temp checkpoint dir on first run), require its
    # offline-vs-served parity self-check to pass, then drive it with the
    # seeded load generator — any ERR or malformed response fails the run.
    local serve_dir serve_addr
    serve_dir="$(tmp_dir serve_smoke)"
    boot_bin "serve_main" "READY addr=" target/release/serve_main "$serve_dir/ck"
    if ! grep -q "PARITY ok" "$BOOT_LOG"; then
        echo "ERROR: serve_main parity self-check did not pass" >&2
        cat "$BOOT_LOG" >&2
        exit 1
    fi
    serve_addr=$(ready_addr "$BOOT_LOG")

    # The load generator must reject nonsense loudly before it must ever
    # touch the network.
    local bad
    for bad in "--requests 0" "--conns 0" "--kmax 0" "--bogus-flag 1" "--zipf -1"; do
        # shellcheck disable=SC2086
        if target/release/loadgen "$serve_addr" $bad >/dev/null 2>&1; then
            echo "ERROR: loadgen accepted invalid args: $bad" >&2
            exit 1
        fi
    done
    if target/release/loadgen not-an-addr --requests 1 >/dev/null 2>&1; then
        echo "ERROR: loadgen accepted a malformed address" >&2
        exit 1
    fi

    target/release/loadgen "$serve_addr" --requests 1000 --conns 4
    target/release/loadgen "$serve_addr" --requests 500 --conns 2 --zipf 1.1
    grep "PARITY ok" "$BOOT_LOG"
    echo "ok: served rankings bit-identical to offline eval, loadgen clean"
}

stage_ann() {
    stage "ann smoke test (IVF recall gate + REC/RECX drive, GRAPHAUG_THREADS=1 and 4)"
    # Boot the demo service with the IVF fast path on. The build-time recall
    # gate must pass (an index under the floor logs `ANN DISABLED` instead,
    # which fails the grep), and both verbs — ANN `REC` and the exact-parity
    # oracle `RECX` — must serve a seeded load cleanly. The nlists/nprobe
    # choice is tuned for the 120-item demo catalog (recall@20 = 0.97 on the
    # deterministic demo embeddings); the index build is bit-deterministic
    # in the thread count, so the gate outcome cannot flap between runs.
    local threads adir ann_addr
    for threads in 1 4; do
        adir="$(tmp_dir ann_smoke)"
        boot_bin "ann_serve_t$threads" "READY addr=" \
            env GRAPHAUG_THREADS=$threads target/release/serve_main "$adir/ck" \
            --ann --ann-nlists 6 --ann-nprobe 4
        if ! grep -q "ANN ok recall=" "$BOOT_LOG"; then
            echo "ERROR: ANN index did not clear the recall floor" >&2
            cat "$BOOT_LOG" >&2
            exit 1
        fi
        ann_addr=$(ready_addr "$BOOT_LOG")
        GRAPHAUG_THREADS=$threads target/release/loadgen "$ann_addr" --requests 400 --conns 2
        GRAPHAUG_THREADS=$threads target/release/loadgen "$ann_addr" --requests 400 --conns 2 --exact
        echo "ok: threads=$threads ANN gate passed, REC and RECX served clean"
    done
}

stage_quant() {
    stage "quant smoke test (int8 drift gate + quant-parity sweep, GRAPHAUG_THREADS=1 and 4, GRAPHAUG_SIMD=0)"
    # Boot the demo service with the int8 tables (and the IVF geometry the
    # ann smoke uses, so the quantized index has lists to probe). The
    # build-time drift gate must pass — a build under the floor logs
    # `QUANT DISABLED` instead, which fails the grep — and the loadgen
    # parity sweep must drive quant `REC` against the pinned f32 `RECX`
    # oracle cleanly. The int8 kernel's integer accumulation is exact, so
    # the gate outcome and the served bits cannot flap with the thread
    # count or the scalar fallback build.
    local threads qdir quant_addr
    for threads in 1 4; do
        qdir="$(tmp_dir quant_smoke)"
        boot_bin "quant_serve_t$threads" "READY addr=" \
            env GRAPHAUG_THREADS=$threads target/release/serve_main "$qdir/ck" \
            --quant --ann --ann-nlists 6 --ann-nprobe 4
        if ! grep -q "QUANT ok drift=" "$BOOT_LOG"; then
            echo "ERROR: int8 tables did not clear the drift floor" >&2
            cat "$BOOT_LOG" >&2
            exit 1
        fi
        quant_addr=$(ready_addr "$BOOT_LOG")
        # The sweep must reject its own invalid invocations loudly.
        if target/release/loadgen "$quant_addr" --quant-parity 0 >/dev/null 2>&1; then
            echo "ERROR: loadgen accepted --quant-parity 0" >&2
            exit 1
        fi
        GRAPHAUG_THREADS=$threads target/release/loadgen "$quant_addr" --quant-parity 32
        GRAPHAUG_SIMD=0 GRAPHAUG_THREADS=$threads target/release/loadgen "$quant_addr" --quant-parity 16 --seed 3
        echo "ok: threads=$threads drift gate passed, quant-parity sweep clean"
    done
}

stage_router() {
    stage "router smoke test (3 replicas + router + chaos loadgen, GRAPHAUG_THREADS=1 and 4)"
    # The full multi-replica story against real processes: three replica
    # engines over one shared demo checkpoint, the shard router in front,
    # and the chaos load generator driving zipf/hot-storm phases plus a
    # scripted kill/rejoin of replica 1. The chaos driver exits non-zero on
    # any ERR outside the documented failover window and on any
    # routed-vs-direct parity deviation (hex-exact, sampled users).
    local threads rdir r0_addr r1_addr r2_addr r1_pid router_addr admin_addr
    for threads in 1 4; do
        rdir="$(tmp_dir router_smoke)"

        # Replica 0 trains the shared demo checkpoint; 1 and 2 find it
        # already valid and boot straight into serving.
        boot_bin "router_replica0_t$threads" "READY addr=" \
            env GRAPHAUG_THREADS=$threads target/release/serve_main "$rdir/ck" --parity-users 4
        r0_addr=$(ready_addr "$BOOT_LOG")
        boot_bin "router_replica1_t$threads" "READY addr=" \
            env GRAPHAUG_THREADS=$threads target/release/serve_main "$rdir/ck" --parity-users 4
        r1_addr=$(ready_addr "$BOOT_LOG")
        r1_pid=$BOOT_PID
        boot_bin "router_replica2_t$threads" "READY addr=" \
            env GRAPHAUG_THREADS=$threads target/release/serve_main "$rdir/ck" --parity-users 4
        r2_addr=$(ready_addr "$BOOT_LOG")

        boot_bin "router_t$threads" "READY addr=" \
            target/release/router_main --replicas "$r0_addr,$r1_addr,$r2_addr"
        router_addr=$(ready_addr "$BOOT_LOG")
        admin_addr=$(ready_admin "$BOOT_LOG")
        if ! grep -q "shards=3 up=3" "$BOOT_LOG"; then
            echo "ERROR: router did not see all three replicas up at boot" >&2
            cat "$BOOT_LOG" >&2
            exit 1
        fi

        GRAPHAUG_THREADS=$threads target/release/chaos_loadgen "$router_addr" \
            --replicas "$r0_addr,$r1_addr,$r2_addr" --admin "$admin_addr" \
            --victim 1 --victim-pid "$r1_pid" \
            --victim-respawn "target/release/serve_main $rdir/ck --parity-users 2" \
            --requests-per-phase 400 --conns 4 --seed 7
        echo "ok: threads=$threads chaos run clean, failover scoped to shard 1, parity hex-exact"
    done
}

stage_supervisor() {
    stage "supervisor chaos smoke (replication 2, SIGKILL a primary under load, GRAPHAUG_THREADS=1 and 4)"
    # The full HA story against real processes and zero operator input:
    # supervisord owns 2 shards x 2 replicas of the demo engine (the first
    # child trains the shared checkpoint, the rest reuse it) plus the
    # router in front. The chaos driver SIGKILLs shard 0's primary under
    # load; with a live secondary in the set there is NO tolerated failover
    # window — any user-visible ERR fails the run — and the driver then
    # waits for the supervisor to respawn the child and REPLACE its new
    # address back into the router (every replica up again).
    local threads sdir sup_addr sets victim_pid pid pat
    for threads in 1 4; do
        sdir="$(tmp_dir supervisor_smoke)"
        boot_bin "supervisord_t$threads" "READY addr=" \
            env GRAPHAUG_THREADS=$threads target/release/supervisord \
            --shards 2 --replication 2 \
            --cmd "target/release/serve_main $sdir/ck --parity-users 2" \
            --backoff-ms 50 --backoff-cap-ms 500 --probe-ms 100
        sup_addr=$(ready_addr "$BOOT_LOG")
        # The children are supervisord's, but cleanup kills with -9 (no
        # guard drop), so register every spawned pid for the EXIT trap.
        for pid in $(sed -n 's/^SPAWNED .*pid=\([0-9]*\).*/\1/p' "$BOOT_LOG"); do
            register_pid "$pid"
        done
        sets="$(spawned_field "$BOOT_LOG" 0 0 addr)|$(spawned_field "$BOOT_LOG" 0 1 addr)"
        sets="$sets,$(spawned_field "$BOOT_LOG" 1 0 addr)|$(spawned_field "$BOOT_LOG" 1 1 addr)"
        victim_pid=$(spawned_field "$BOOT_LOG" 0 0 pid)
        if [[ -z "$victim_pid" || "$sets" == *"|,"* || "$sets" == *"|" ]]; then
            echo "ERROR: could not parse SPAWNED lines from supervisord" >&2
            cat "$BOOT_LOG" >&2
            exit 1
        fi

        GRAPHAUG_THREADS=$threads target/release/chaos_loadgen "$sup_addr" \
            --replicas "$sets" --supervised \
            --victim 0 --victim-pid "$victim_pid" \
            --requests-per-phase 400 --conns 4 --seed 11
        for pat in "RESPAWNED shard=0 replica=0" "REPLACED shard=0 replica=0"; do
            if ! grep -q "$pat" "$BOOT_LOG"; then
                echo "ERROR: supervisord never logged '$pat'" >&2
                cat "$BOOT_LOG" >&2
                exit 1
            fi
        done
        # Register the respawned child too.
        for pid in $(sed -n 's/^RESPAWNED .*pid=\([0-9]*\).*/\1/p' "$BOOT_LOG"); do
            register_pid "$pid"
        done
        echo "ok: threads=$threads SIGKILLed primary cost zero user-visible errors; supervisor respawned and REPLACEd it"
    done
}

stage_online() {
    stage "online ingestion smoke (ingestd + serve_main --log-dir, live vs replay, GRAPHAUG_THREADS=1 and 4)"
    # The online-learning loop end to end, across real process boundaries:
    # ingestd owns the interaction log and the fine-tune loop, serve_main
    # watches the same checkpoint directory (resolving fine-tuned
    # generations through --log-dir) and hot-reloads them with zero
    # downtime. The loadgen streams seeded durable PUTs; after the rounds
    # land, the served rankings must have shifted, and a from-scratch
    # replay of the log (fresh checkpoint directory, same deterministic
    # base training) must reproduce the live run's final checkpoint
    # fingerprint AND serve hex-identical rankings — at both thread counts.
    local threads odir ingest_addr serve_addr ingest_log serve_log
    local pre post stats live_fnv replay_fnv replay_dump _i
    for threads in 1 4; do
        odir="$(tmp_dir online_smoke)"

        # ingestd trains the demo base model, then listens for PUTs and
        # polls the log for complete 32-record windows.
        boot_bin "ingestd_t$threads" "READY addr=" \
            env GRAPHAUG_THREADS=$threads target/release/ingestd "$odir/ck" "$odir/log" \
            --window 32 --round-steps 4 --poll-ms 10
        ingest_addr=$(ready_addr "$BOOT_LOG")
        ingest_log="$BOOT_LOG"

        # serve_main reuses the checkpoint ingestd just trained and watches
        # the directory for the fine-tuned generations.
        boot_bin "online_serve_t$threads" "READY addr=" \
            env GRAPHAUG_THREADS=$threads target/release/serve_main "$odir/ck" \
            --log-dir "$odir/log" --watch-ms 50 --parity-users 4
        grep -q "PARITY ok" "$BOOT_LOG" || {
            echo "ERROR: online serve parity self-check did not pass" >&2
            cat "$BOOT_LOG" >&2
            exit 1
        }
        serve_addr=$(ready_addr "$BOOT_LOG")
        serve_log="$BOOT_LOG"

        # Snapshot rankings, stream exactly three windows of interactions
        # (each PUT is fsync-durable before its OK), then wait for the
        # third fine-tune round to publish.
        pre=$(target/release/loadgen "$serve_addr" --dump 8)
        target/release/loadgen "$ingest_addr" --put 96 --users 150 --items 120 --seed 5
        if ! wait_for_line "$ingest_log" "FINETUNE round=3 "; then
            echo "ERROR: ingestd never completed fine-tune round 3" >&2
            cat "$ingest_log" >&2
            exit 1
        fi

        # The watcher must pick the new generation up (STATS reports the
        # served tables' watermark) without a single user-visible error.
        stats=""
        for _i in $(seq 1 200); do
            stats=$(target/release/loadgen "$serve_addr" --stats)
            [[ "$stats" == *"finetunes=3"* ]] && break
            sleep 0.1
        done
        if [[ "$stats" != *"finetunes=3"* || "$stats" != *"log_offset=96"* ]]; then
            echo "ERROR: serve never reloaded the fine-tuned generation: $stats" >&2
            cat "$serve_log" >&2
            exit 1
        fi
        if grep -q "ERR" "$serve_log" "$ingest_log"; then
            echo "ERROR: online loop logged an error" >&2
            exit 1
        fi
        post=$(target/release/loadgen "$serve_addr" --dump 8)
        if [[ "$pre" == "$post" ]]; then
            echo "ERROR: rankings did not shift after three fine-tune rounds" >&2
            exit 1
        fi

        # Replay determinism: a fresh checkpoint directory, the same
        # deterministic base training, the same finished log — the final
        # checkpoint fingerprint must match the live run's.
        GRAPHAUG_THREADS=$threads target/release/ingestd "$odir/ck2" "$odir/log" \
            --window 32 --round-steps 4 --replay \
            >"$LOG_DIR/ingestd_replay_t$threads.log" 2>&1
        live_fnv=$(sed -n 's/^FINETUNE round=3 .*ckpt_fnv=\([0-9a-f]*\).*/\1/p' "$ingest_log" | head -n 1)
        replay_fnv=$(sed -n 's/^REPLAY done .*ckpt_fnv=\([0-9a-f]*\).*/\1/p' \
            "$LOG_DIR/ingestd_replay_t$threads.log" | head -n 1)
        if [[ -z "$live_fnv" || "$live_fnv" != "$replay_fnv" ]]; then
            echo "ERROR: replay fingerprint mismatch (live=$live_fnv replay=$replay_fnv)" >&2
            cat "$LOG_DIR/ingestd_replay_t$threads.log" >&2
            exit 1
        fi

        # And the replayed checkpoint must serve the exact same bits.
        boot_bin "online_replay_serve_t$threads" "READY addr=" \
            env GRAPHAUG_THREADS=$threads target/release/serve_main "$odir/ck2" \
            --log-dir "$odir/log" --watch-ms 50 --parity-users 4
        replay_dump=$(target/release/loadgen "$(ready_addr "$BOOT_LOG")" --dump 8)
        if [[ "$post" != "$replay_dump" ]]; then
            echo "ERROR: replayed service rankings differ from the live service" >&2
            echo "  live:   $post" >&2
            echo "  replay: $replay_dump" >&2
            exit 1
        fi
        echo "ok: threads=$threads fine-tuned reload clean, replay fingerprint + rankings hex-identical"
    done
}

group_process() {
    stage_kill_resume
    stage_serving
    stage_ann
    stage_quant
    stage_router
    stage_supervisor
    stage_online
}

group_gates() {
    stage "perf trajectory gate (BENCH_pr10 vs BENCH_pr9)"
    # The recorded PR 10 trajectory point must hold a ≤10% median regression
    # bound against the PR 9 baseline (best-of-4 interleaved medians, same
    # recording protocol as PR 9). This diffs the two *recorded* files —
    # deterministic and machine-independent — rather than re-benching on
    # whatever box CI runs on.
    if [[ -f BENCH_pr10.json && -f BENCH_pr9.json ]]; then
        cargo run --release --offline -q -p graphaug-bench --bin bench_compare -- \
            BENCH_pr10.json BENCH_pr9.json --threshold 10
    else
        echo "skip: BENCH_pr10.json / BENCH_pr9.json not both present"
    fi

    stage "dependency hermeticity check"
    # No crate manifest may declare a non-path external dependency.
    if grep -rEn '^\s*(rand|proptest|criterion)\s*=' crates/*/Cargo.toml; then
        echo "ERROR: external registry dependency found in a crate manifest" >&2
        exit 1
    fi
    echo "ok: all dependencies are local path crates"
}

# ---------------------------------------------------------------------------
# Dispatch.
# ---------------------------------------------------------------------------

GROUP="${1:-all}"
case "$GROUP" in
    static) group_static ;;
    build) group_build ;;
    tests) group_tests ;;
    bench) group_bench ;;
    process) group_process ;;
    gates) group_gates ;;
    all)
        group_static
        group_build
        group_tests
        group_bench
        group_process
        group_gates
        printf '\nCI gate passed.\n'
        ;;
    *)
        echo "unknown stage group '$GROUP' (static|build|tests|bench|process|gates|all)" >&2
        exit 2
        ;;
esac
